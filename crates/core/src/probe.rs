//! Typed streaming probes — the observation side of the [`crate::session`]
//! facade.
//!
//! A [`Probe`] watches a running simulation instead of post-processing a
//! finished one: the session offers it every accepted analogue point
//! (`on_sample`), every digital-kernel activation and control action
//! (`on_event`), and the forced segment-end samples (`on_final_sample`). The
//! built-ins cover the measurements the `measurement` module used to re-walk
//! dense trajectories for, with **O(1)** memory:
//!
//! * [`PowerProbe`] — streaming RMS/average generator-power windows plus the
//!   off-resonance dip scan (subsumes [`crate::measurement::power_report`]);
//! * [`EnvelopeProbe`] — running min/max/last of one state or terminal (the
//!   supercapacitor envelope of a sweep point);
//! * [`StepHistogramProbe`] — a log₂ histogram of the accepted step sizes
//!   (the per-*order* histogram stays in [`crate::SolverStats`], which the
//!   session reports alongside);
//! * [`WaveformProbe`] — the one deliberately O(steps) probe: classic dense
//!   decimated capture, used by the deprecated-shim path that must keep
//!   returning full trajectories.
//!
//! A sweep point that attaches only streaming probes never materialises a
//! dense [`Trajectory`] at all — the property the `repro --sweep` grid and
//! its `peak_probe_bytes` record are built on.

use std::any::Any;

use harvsim_linalg::DVector;
use harvsim_ode::{DecimatedRecorder, Trajectory};

use crate::checkpoint::{ByteReader, ByteWriter};
use crate::measurement::PowerReport;
use crate::mixed::ControlEvent;

/// A digital-side event forwarded to probes by the session.
#[derive(Debug, Clone, PartialEq)]
pub enum DigitalEvent {
    /// One digital-kernel process activation (tapped through
    /// `harvsim_digital::Kernel::run_until_with`), after the process has run.
    Activation {
        /// Simulation time of the activation, in seconds.
        time_s: f64,
        /// Name of the resumed process (e.g. `microcontroller`).
        process: String,
    },
    /// A control action the digital side applied to the analogue model
    /// (load-mode switch and/or resonance retune).
    Control(ControlEvent),
}

/// An observer attached to a [`crate::session::Session`].
///
/// Probes are trait objects; the session owns them and drives every hook.
/// All hooks except [`Probe::on_sample`] have conservative defaults, so a
/// minimal probe implements one method. `Probe: Any` enables typed retrieval
/// through [`crate::session::Session::probe`] after (or during) a run;
/// `Probe: Send` lets a session (and its probes) migrate between the worker
/// threads of [`crate::service::SessionService`].
pub trait Probe: Any + Send {
    /// Called when an analogue segment `[t0, t_end]` opens (between digital
    /// events). Dense recorders reset their decimation clock here so every
    /// segment records its opening point — the behaviour the pre-session
    /// solvers had; streaming probes normally ignore it.
    fn on_segment(&mut self, _t0: f64, _t_end: f64) {}

    /// Called once per accepted analogue point with the solver's state and
    /// terminal vectors (borrowed from the engine workspace — clone what must
    /// outlive the call). Sample times are non-decreasing; segment
    /// boundaries deliver the same time twice (segment-end forced sample,
    /// then the next segment's opening point), which integrating probes
    /// absorb as a zero-width trapezoid.
    fn on_sample(&mut self, t: f64, states: &DVector, terminals: &DVector);

    /// Called for the forced sample at the end of every analogue segment.
    /// The default forwards to [`Probe::on_sample`] (right for streaming
    /// accumulators); dense recorders override it to record unconditionally,
    /// decimation notwithstanding.
    fn on_final_sample(&mut self, t: f64, states: &DVector, terminals: &DVector) {
        self.on_sample(t, states, terminals);
    }

    /// Called for every digital-kernel activation and control action.
    fn on_event(&mut self, _event: &DigitalEvent) {}

    /// Bytes of sample-dependent memory this probe currently retains. The
    /// session tracks the high-water sum across all probes
    /// ([`crate::session::SessionReport::peak_probe_bytes`]) — the observable
    /// proof that a streaming run is O(1) in the simulated duration. The
    /// default reports the probe's own struct size, which is exact for
    /// heap-free streaming probes; retaining probes must add their buffers.
    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Serialises the probe's observation state for a session checkpoint.
    /// Blobs are self-describing (each built-in opens with a type tag), so a
    /// restore against the wrong probe type is detected, not silently
    /// accepted. The default returns an empty blob — correct for probes with
    /// no state worth carrying across a save/restore cycle.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state saved by [`Probe::save_state`] on a freshly constructed
    /// probe of the same type. Returns `false` (leaving the probe untouched)
    /// if the blob was not written by this probe type or is corrupt; the
    /// session maps that to a typed checkpoint error. The default accepts
    /// exactly the empty blob its default `save_state` produces.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

// Probe-state blob type tags (first byte of every built-in probe blob).
const TAG_WAVEFORM: u8 = 1;
const TAG_POWER: u8 = 2;
const TAG_ENVELOPE: u8 = 3;
const TAG_STEP_HISTOGRAM: u8 = 4;

fn encode_trajectory(w: &mut ByteWriter, trajectory: &Trajectory) {
    w.put_usize(trajectory.len());
    for (time, state) in trajectory.times().iter().zip(trajectory.states()) {
        w.put_f64(*time);
        w.put_vector(state);
    }
}

fn decode_trajectory(r: &mut ByteReader<'_>) -> Option<Trajectory> {
    let len = r.take_usize().ok()?;
    let mut trajectory = Trajectory::new();
    for _ in 0..len {
        let time = r.take_f64().ok()?;
        let state = r.take_vector().ok()?;
        trajectory.push(time, state);
    }
    Some(trajectory)
}

/// Dense decimated waveform capture — the classic recording behaviour as a
/// probe. Retains a sample when at least `interval` seconds have passed since
/// the last retained one within the current segment, plus every forced
/// segment-end sample; the decimation clock resets at segment starts. With
/// the interval taken from the engine options this reproduces the
/// trajectories the pre-session engines recorded, bit for bit — which is
/// exactly how the deprecated [`crate::ScenarioConfig::run`] shim keeps its
/// output pinned.
#[derive(Debug, Clone)]
pub struct WaveformProbe {
    interval: f64,
    last_recorded: f64,
    states: Trajectory,
    terminals: Trajectory,
}

impl WaveformProbe {
    /// Creates a capture probe with the given minimum sample spacing
    /// (`0.0` retains every offered sample).
    pub fn new(interval: f64) -> Self {
        WaveformProbe {
            interval,
            last_recorded: f64::NEG_INFINITY,
            states: Trajectory::new(),
            terminals: Trajectory::new(),
        }
    }

    /// The captured state trajectory so far.
    pub fn states(&self) -> &Trajectory {
        &self.states
    }

    /// The captured terminal trajectory so far.
    pub fn terminals(&self) -> &Trajectory {
        &self.terminals
    }

    /// Consumes the probe, returning `(states, terminals)`.
    pub fn into_trajectories(self) -> (Trajectory, Trajectory) {
        (self.states, self.terminals)
    }
}

impl Probe for WaveformProbe {
    fn on_segment(&mut self, _t0: f64, _t_end: f64) {
        self.last_recorded = f64::NEG_INFINITY;
    }

    fn on_sample(&mut self, t: f64, states: &DVector, terminals: &DVector) {
        // One shared predicate with the solvers' own dense recorder, so the
        // two recording paths the bit-identity shims compare cannot drift.
        if DecimatedRecorder::due(self.last_recorded, self.interval, t) {
            self.states.push(t, states.clone());
            self.terminals.push(t, terminals.clone());
            self.last_recorded = t;
        }
    }

    fn on_final_sample(&mut self, t: f64, states: &DVector, terminals: &DVector) {
        self.states.push(t, states.clone());
        self.terminals.push(t, terminals.clone());
    }

    fn memory_bytes(&self) -> usize {
        let per_sample = |trajectory: &Trajectory| {
            let state_len = trajectory.states().first().map(DVector::len).unwrap_or(0);
            trajectory.len() * (std::mem::size_of::<f64>() * (1 + state_len))
        };
        std::mem::size_of_val(self) + per_sample(&self.states) + per_sample(&self.terminals)
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_WAVEFORM);
        w.put_f64(self.interval);
        w.put_f64(self.last_recorded);
        encode_trajectory(&mut w, &self.states);
        encode_trajectory(&mut w, &self.terminals);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let parsed = (|| {
            if r.take_u8().ok()? != TAG_WAVEFORM {
                return None;
            }
            let interval = r.take_f64().ok()?;
            let last_recorded = r.take_f64().ok()?;
            let states = decode_trajectory(&mut r)?;
            let terminals = decode_trajectory(&mut r)?;
            r.expect_end().ok()?;
            Some((interval, last_recorded, states, terminals))
        })();
        match parsed {
            Some((interval, last_recorded, states, terminals)) => {
                self.interval = interval;
                self.last_recorded = last_recorded;
                self.states = states;
                self.terminals = terminals;
                true
            }
            None => false,
        }
    }
}

/// Trapezoidal mean of a streamed scalar over a fixed window `[t0, t1]`,
/// with linear interpolation at the window edges — O(1) state.
#[derive(Debug, Clone, Copy)]
struct WindowMean {
    t0: f64,
    t1: f64,
    integral: f64,
    covered: f64,
}

impl WindowMean {
    fn new(t0: f64, t1: f64) -> Self {
        WindowMean { t0, t1, integral: 0.0, covered: 0.0 }
    }

    /// Accumulates the trapezoid of the segment `(ta, va) → (tb, vb)` clipped
    /// to the window.
    fn feed(&mut self, ta: f64, va: f64, tb: f64, vb: f64) {
        let lo = ta.max(self.t0);
        let hi = tb.min(self.t1);
        if hi <= lo {
            return;
        }
        let value_at = |t: f64| {
            if tb > ta {
                va + (vb - va) * (t - ta) / (tb - ta)
            } else {
                va
            }
        };
        let (v_lo, v_hi) = (value_at(lo), value_at(hi));
        self.integral += 0.5 * (v_lo + v_hi) * (hi - lo);
        self.covered += hi - lo;
    }

    fn mean(&self) -> f64 {
        if self.covered > 0.0 {
            self.integral / self.covered
        } else {
            0.0
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.t0);
        w.put_f64(self.t1);
        w.put_f64(self.integral);
        w.put_f64(self.covered);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(WindowMean {
            t0: r.take_f64().ok()?,
            t1: r.take_f64().ok()?,
            integral: r.take_f64().ok()?,
            covered: r.take_f64().ok()?,
        })
    }
}

/// Streaming generator-power measurement: the instantaneous power
/// `p(t) = V_m(t)·I_m(t)` is integrated on the fly into the three figures the
/// paper quotes alongside Fig. 8(a) — mean power before the frequency step,
/// mean power after retuning, and the minimum windowed mean while detuned —
/// with O(1) memory. This subsumes the post-hoc
/// [`crate::measurement::power_report`] walk over recorded trajectories; the
/// probe integrates the *full* accepted-step grid instead of the decimated
/// recording, so its windows are at least as well resolved.
#[derive(Debug, Clone)]
pub struct PowerProbe {
    vm: usize,
    im: usize,
    before: WindowMean,
    after: WindowMean,
    /// Tumbling dip window currently being filled (starts at the frequency
    /// step; each window is `dip_window` long).
    dip_current: WindowMean,
    dip_window: f64,
    dip_end: f64,
    dip_min: f64,
    last: Option<(f64, f64)>,
}

impl PowerProbe {
    /// Creates a power probe for a run of `duration_s` whose ambient
    /// frequency steps at `step_time_s`, reading `V_m`/`I_m` from the given
    /// terminal indices (see `TunableHarvester::generator_voltage_net` /
    /// `generator_current_net`). The windows mirror
    /// [`crate::measurement::power_report`]: before = settled span up to the
    /// step, after = final quarter of the post-step span, dip = minimum
    /// 50 ms-mean between the step and the end.
    pub fn new(vm: usize, im: usize, step_time_s: f64, duration_s: f64) -> Self {
        let before_start = step_time_s * 0.2;
        let after_start = duration_s - (duration_s - step_time_s) * 0.25;
        PowerProbe {
            vm,
            im,
            before: WindowMean::new(before_start, step_time_s.max(before_start + 1e-3)),
            after: WindowMean::new(after_start, duration_s),
            dip_current: WindowMean::new(step_time_s, step_time_s + 0.05),
            dip_window: 0.05,
            dip_end: duration_s,
            dip_min: f64::INFINITY,
            last: None,
        }
    }

    /// The streaming [`PowerReport`]: RMS-equivalent mean power before the
    /// step and after retuning (in µW), and the minimum windowed mean in
    /// between. Valid at any point of the run; final once the run completes.
    pub fn report(&self) -> PowerReport {
        let after = self.after.mean();
        let mut dip = self.dip_min.min(after);
        // A partially filled final dip window still counts, exactly like the
        // truncated trailing window of the post-hoc scan.
        if self.dip_current.covered > 0.0 {
            dip = dip.min(self.dip_current.mean());
        }
        PowerReport {
            rms_before_uw: self.before.mean() * 1e6,
            rms_after_uw: after * 1e6,
            dip_uw: dip * 1e6,
        }
    }
}

impl Probe for PowerProbe {
    fn on_sample(&mut self, t: f64, _states: &DVector, terminals: &DVector) {
        let p = terminals[self.vm] * terminals[self.im];
        if let Some((ta, pa)) = self.last {
            if t > ta {
                self.before.feed(ta, pa, t, p);
                self.after.feed(ta, pa, t, p);
                // Tumbling dip windows: finalise every window the new sample
                // crosses (feeds clip to the window, so one segment can fill
                // several), then feed the remainder into the open one.
                while t >= self.dip_current.t1 && self.dip_current.t0 < self.dip_end {
                    self.dip_current.feed(ta, pa, t, p);
                    if self.dip_current.covered > 0.0 {
                        self.dip_min = self.dip_min.min(self.dip_current.mean());
                    }
                    let t1 = self.dip_current.t1;
                    self.dip_current = WindowMean::new(t1, t1 + self.dip_window);
                }
                self.dip_current.feed(ta, pa, t, p);
            }
        }
        self.last = Some((t, p));
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_POWER);
        w.put_usize(self.vm);
        w.put_usize(self.im);
        self.before.encode(&mut w);
        self.after.encode(&mut w);
        self.dip_current.encode(&mut w);
        w.put_f64(self.dip_window);
        w.put_f64(self.dip_end);
        w.put_f64(self.dip_min);
        match self.last {
            Some((t, p)) => {
                w.put_bool(true);
                w.put_f64(t);
                w.put_f64(p);
            }
            None => w.put_bool(false),
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let parsed = (|| {
            if r.take_u8().ok()? != TAG_POWER {
                return None;
            }
            let vm = r.take_usize().ok()?;
            let im = r.take_usize().ok()?;
            let before = WindowMean::decode(&mut r)?;
            let after = WindowMean::decode(&mut r)?;
            let dip_current = WindowMean::decode(&mut r)?;
            let dip_window = r.take_f64().ok()?;
            let dip_end = r.take_f64().ok()?;
            let dip_min = r.take_f64().ok()?;
            let last = if r.take_bool().ok()? {
                Some((r.take_f64().ok()?, r.take_f64().ok()?))
            } else {
                None
            };
            r.expect_end().ok()?;
            Some(PowerProbe {
                vm,
                im,
                before,
                after,
                dip_current,
                dip_window,
                dip_end,
                dip_min,
                last,
            })
        })();
        match parsed {
            Some(probe) => {
                *self = probe;
                true
            }
            None => false,
        }
    }
}

/// What an [`EnvelopeProbe`] watches: one component of the state vector or of
/// the terminal (net) vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalSource {
    /// Global state component `x[i]`.
    State(usize),
    /// Terminal (net) component `y[i]`.
    Terminal(usize),
}

/// Running min/max/last envelope of one signal — the O(1) replacement for
/// retaining a whole trajectory when a sweep only needs "did the store dip
/// below threshold / where did it end".
#[derive(Debug, Clone)]
pub struct EnvelopeProbe {
    source: SignalSource,
    min: f64,
    max: f64,
    first: f64,
    last: f64,
    samples: usize,
}

impl EnvelopeProbe {
    /// Envelope of a terminal (net) component — e.g. the supercapacitor
    /// voltage `V_c` (see `TunableHarvester::storage_voltage_net`).
    pub fn terminal(index: usize) -> Self {
        Self::of(SignalSource::Terminal(index))
    }

    /// Envelope of a global state component.
    pub fn state(index: usize) -> Self {
        Self::of(SignalSource::State(index))
    }

    fn of(source: SignalSource) -> Self {
        EnvelopeProbe {
            source,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: f64::NAN,
            last: f64::NAN,
            samples: 0,
        }
    }

    /// Minimum observed value (∞ before the first sample).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (−∞ before the first sample).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// First observed value (NaN before the first sample).
    pub fn first(&self) -> f64 {
        self.first
    }

    /// Most recent observed value (NaN before the first sample).
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Number of samples observed.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl Probe for EnvelopeProbe {
    fn on_sample(&mut self, _t: f64, states: &DVector, terminals: &DVector) {
        let value = match self.source {
            SignalSource::State(i) => states[i],
            SignalSource::Terminal(i) => terminals[i],
        };
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.samples == 0 {
            self.first = value;
        }
        self.last = value;
        self.samples += 1;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_ENVELOPE);
        match self.source {
            SignalSource::State(index) => {
                w.put_u8(0);
                w.put_usize(index);
            }
            SignalSource::Terminal(index) => {
                w.put_u8(1);
                w.put_usize(index);
            }
        }
        w.put_f64(self.min);
        w.put_f64(self.max);
        w.put_f64(self.first);
        w.put_f64(self.last);
        w.put_usize(self.samples);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let parsed = (|| {
            if r.take_u8().ok()? != TAG_ENVELOPE {
                return None;
            }
            let source = match r.take_u8().ok()? {
                0 => SignalSource::State(r.take_usize().ok()?),
                1 => SignalSource::Terminal(r.take_usize().ok()?),
                _ => return None,
            };
            let probe = EnvelopeProbe {
                source,
                min: r.take_f64().ok()?,
                max: r.take_f64().ok()?,
                first: r.take_f64().ok()?,
                last: r.take_f64().ok()?,
                samples: r.take_usize().ok()?,
            };
            r.expect_end().ok()?;
            Some(probe)
        })();
        match parsed {
            Some(probe) => {
                *self = probe;
                true
            }
            None => false,
        }
    }
}

/// Number of logarithmic bins in the [`StepHistogramProbe`]; bin `k` covers
/// step sizes in `[2^(k-30), 2^(k-29))` seconds, spanning ~1 ns … ~0.26 s.
pub const STEP_HISTOGRAM_BINS: usize = 28;

/// Log₂ histogram of the accepted step sizes, measured as the spacing of the
/// offered sample times — the streaming view of "where does the march spend
/// its steps" that used to require a dense time vector. (The per-*order*
/// histogram is already O(1) in [`crate::SolverStats::steps_by_order`]; the
/// session reports both.) Duplicate times at segment boundaries are ignored.
#[derive(Debug, Clone)]
pub struct StepHistogramProbe {
    bins: [usize; STEP_HISTOGRAM_BINS],
    last_t: Option<f64>,
    total_steps: usize,
    min_dt: f64,
    max_dt: f64,
}

impl StepHistogramProbe {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StepHistogramProbe {
            bins: [0; STEP_HISTOGRAM_BINS],
            last_t: None,
            total_steps: 0,
            min_dt: f64::INFINITY,
            max_dt: 0.0,
        }
    }

    /// Bin counts; bin `k` covers `[2^(k-30), 2^(k-29))` seconds.
    pub fn bins(&self) -> &[usize; STEP_HISTOGRAM_BINS] {
        &self.bins
    }

    /// Lower edge of bin `k`, in seconds.
    pub fn bin_floor(k: usize) -> f64 {
        (2.0_f64).powi(k as i32 - 30)
    }

    /// Number of intervals observed.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Smallest observed step (∞ before two samples).
    pub fn min_dt(&self) -> f64 {
        self.min_dt
    }

    /// Largest observed step.
    pub fn max_dt(&self) -> f64 {
        self.max_dt
    }
}

impl Default for StepHistogramProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for StepHistogramProbe {
    fn on_sample(&mut self, t: f64, _states: &DVector, _terminals: &DVector) {
        if let Some(last) = self.last_t {
            let dt = t - last;
            if dt > 0.0 {
                let bin = (dt.log2() + 30.0).floor().clamp(0.0, (STEP_HISTOGRAM_BINS - 1) as f64);
                self.bins[bin as usize] += 1;
                self.total_steps += 1;
                self.min_dt = self.min_dt.min(dt);
                self.max_dt = self.max_dt.max(dt);
            }
        }
        self.last_t = Some(t);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_STEP_HISTOGRAM);
        for &bin in &self.bins {
            w.put_usize(bin);
        }
        w.put_bool(self.last_t.is_some());
        w.put_f64(self.last_t.unwrap_or(0.0));
        w.put_usize(self.total_steps);
        w.put_f64(self.min_dt);
        w.put_f64(self.max_dt);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let parsed = (|| {
            if r.take_u8().ok()? != TAG_STEP_HISTOGRAM {
                return None;
            }
            let mut bins = [0usize; STEP_HISTOGRAM_BINS];
            for bin in bins.iter_mut() {
                *bin = r.take_usize().ok()?;
            }
            let have_last = r.take_bool().ok()?;
            let last = r.take_f64().ok()?;
            let probe = StepHistogramProbe {
                bins,
                last_t: have_last.then_some(last),
                total_steps: r.take_usize().ok()?,
                min_dt: r.take_f64().ok()?,
                max_dt: r.take_f64().ok()?,
            };
            r.expect_end().ok()?;
            Some(probe)
        })();
        match parsed {
            Some(probe) => {
                *self = probe;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(probe: &mut dyn Probe, t: f64, x: &[f64], y: &[f64]) {
        probe.on_sample(t, &DVector::from_slice(x), &DVector::from_slice(y));
    }

    #[test]
    fn waveform_probe_decimates_and_resets_per_segment() {
        let mut probe = WaveformProbe::new(0.01);
        probe.on_segment(0.0, 0.05);
        for k in 0..=10 {
            sample(&mut probe, k as f64 * 0.002, &[k as f64], &[0.0]);
        }
        // 0.0, 0.01(8: t=0.016? no: retained at 0.0, 0.010, 0.020)
        let times = probe.states().times().to_vec();
        assert_eq!(times.first(), Some(&0.0));
        assert!(times.windows(2).all(|w| w[1] - w[0] >= 0.01 - 1e-12));
        let before = probe.states().len();
        // Forced segment-end sample records regardless of spacing.
        probe.on_final_sample(0.0201, &DVector::from_slice(&[99.0]), &DVector::from_slice(&[0.0]));
        assert_eq!(probe.states().len(), before + 1);
        // New segment: the opening point records even though it repeats.
        probe.on_segment(0.0201, 0.1);
        sample(&mut probe, 0.0201, &[99.0], &[0.0]);
        assert_eq!(probe.states().len(), before + 2);
        assert!(probe.memory_bytes() > std::mem::size_of::<WaveformProbe>());
        let (states, terminals) = probe.into_trajectories();
        assert_eq!(states.len(), terminals.len());
    }

    #[test]
    fn envelope_probe_tracks_min_max_last() {
        let mut probe = EnvelopeProbe::terminal(1);
        sample(&mut probe, 0.0, &[0.0], &[0.0, 2.5]);
        sample(&mut probe, 1.0, &[0.0], &[0.0, 2.2]);
        sample(&mut probe, 2.0, &[0.0], &[0.0, 2.8]);
        assert_eq!(probe.min(), 2.2);
        assert_eq!(probe.max(), 2.8);
        assert_eq!(probe.first(), 2.5);
        assert_eq!(probe.last(), 2.8);
        assert_eq!(probe.samples(), 3);
        // O(1): the probe's own struct size, independent of sample count.
        assert_eq!(probe.memory_bytes(), std::mem::size_of::<EnvelopeProbe>());
        let mut state_probe = EnvelopeProbe::state(0);
        sample(&mut state_probe, 0.0, &[-1.0], &[0.0, 0.0]);
        assert_eq!(state_probe.min(), -1.0);
    }

    #[test]
    fn power_probe_means_match_a_flat_waveform() {
        // Constant p = 2 W everywhere: every window mean must be exactly 2 W.
        let mut probe = PowerProbe::new(0, 1, 1.0, 4.0);
        let mut t = 0.0;
        while t <= 4.0 {
            sample(&mut probe, t, &[0.0], &[2.0, 1.0]);
            t += 0.01;
        }
        let report = probe.report();
        assert!((report.rms_before_uw - 2e6).abs() < 1.0, "before {}", report.rms_before_uw);
        assert!((report.rms_after_uw - 2e6).abs() < 1.0, "after {}", report.rms_after_uw);
        assert!((report.dip_uw - 2e6).abs() < 1.0, "dip {}", report.dip_uw);
    }

    #[test]
    fn power_probe_dip_finds_the_trough() {
        // p = 1 W, except a 0.2 s trough at 0.1 W in the middle of the
        // post-step span.
        let mut probe = PowerProbe::new(0, 1, 1.0, 4.0);
        let mut t = 0.0;
        while t <= 4.0 {
            let p: f64 = if (2.0..2.2).contains(&t) { 0.1 } else { 1.0 };
            sample(&mut probe, t, &[0.0], &[p, 1.0]);
            t += 0.001;
        }
        let report = probe.report();
        assert!(report.dip_uw < 0.2e6, "dip {} should see the trough", report.dip_uw);
        assert!((report.rms_after_uw - 1e6).abs() < 1e4, "after {}", report.rms_after_uw);
        // Streaming state stays O(1).
        assert_eq!(probe.memory_bytes(), std::mem::size_of::<PowerProbe>());
    }

    #[test]
    fn step_histogram_bins_by_log2() {
        let mut probe = StepHistogramProbe::default();
        let mut t = 0.0;
        for _ in 0..100 {
            sample(&mut probe, t, &[0.0], &[0.0]);
            t += 1e-4;
        }
        // Duplicate boundary time is ignored.
        sample(&mut probe, t - 1e-4, &[0.0], &[0.0]);
        assert_eq!(probe.total_steps(), 99);
        assert!((probe.min_dt() - 1e-4).abs() < 1e-9);
        assert!((probe.max_dt() - 1e-4).abs() < 1e-9);
        let filled: Vec<usize> =
            (0..STEP_HISTOGRAM_BINS).filter(|&k| probe.bins()[k] > 0).collect();
        // 1e-4 s lands in exactly one bin (modulo float rounding at edges).
        assert!(filled.len() <= 2, "bins {filled:?}");
        let k = filled[0];
        assert!(StepHistogramProbe::bin_floor(k) <= 1e-4);
        assert!(StepHistogramProbe::bin_floor(k + 2) > 1e-4);
    }
}
