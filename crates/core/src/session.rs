//! The streaming simulation facade: a [`Simulation`] builder producing an
//! observable, resumable [`Session`].
//!
//! The pre-session API ran every simulation to completion and materialised
//! two dense trajectories per run — O(steps) memory per sweep point, no
//! mid-run observation, no early exit, and every measurement a post-hoc walk
//! over recorded waveforms. A `Session` inverts that: the mixed-signal
//! co-simulation (analogue march segments interleaved with digital-kernel
//! events) becomes a state machine the caller advances explicitly —
//! [`Session::step`], [`Session::run_until`], [`Session::run_to_end`] — while
//! typed [`Probe`]s observe every accepted analogue point and every digital
//! event as they happen. Pausing is simply returning from `run_until`;
//! resuming is calling it again.
//!
//! Two properties are load-bearing (and pinned by tests):
//!
//! * **Pause/resume is bit-identical.** `run_until(t)` never truncates an
//!   integration step to land on `t`: it pauses at the first accepted step
//!   boundary at or past `t`, with the in-flight march (Adams–Bashforth
//!   history, step-ladder rung, stability plan, Newton iterate) kept alive in
//!   the session. The step sequence — and therefore every recorded number —
//!   is identical to an uninterrupted run, for both engines, IMEX on or off.
//! * **Streaming runs are O(1) in the simulated span.** A session whose
//!   probes are all streaming (envelope, power windows, histograms) allocates
//!   no dense [`harvsim_ode::Trajectory`]; the high-water probe footprint is
//!   reported as [`SessionReport::peak_probe_bytes`].
//!
//! The old entry points survive as thin shims re-seated on sessions:
//! [`crate::MixedSignalSimulation::run`] (and through it
//! [`crate::ScenarioConfig::run`]) attaches one dense [`WaveformProbe`] and
//! runs to the end, reproducing the pre-session trajectories bit for bit.
//! See DESIGN.md §8 for the ownership diagram and the probe dispatch cost
//! budget.

use std::any::Any;
use std::time::{Duration, Instant};

use harvsim_blocks::{ControllerConfig, HarvesterEnvironment, LoadMode, MicroController};
use harvsim_digital::{Kernel, SimTime};
use harvsim_linalg::DVector;
use harvsim_ode::SampleSink;

use crate::baseline::{BaselineMarch, BaselineOptions, BaselineStats, BaselineWorkspace};
use crate::checkpoint::{self, ByteReader, ByteWriter, CheckpointError};
use crate::harvester::TunableHarvester;
use crate::mixed::{ControlEvent, EngineStats, SimulationEngine};
use crate::probe::{DigitalEvent, Probe, WaveformProbe};
use crate::scenario::ScenarioConfig;
use crate::solver::{SolverOptions, SolverStats, SolverWorkspace, StateSpaceMarch};
use crate::CoreError;

/// Builder for a [`Session`]: a [`ScenarioConfig`] plus fluent overrides for
/// the knobs a caller usually touches (span, engine, solver options, label).
/// `Simulation` is cheap to clone and reusable — every [`Simulation::start`]
/// call produces an independent session.
///
/// ```
/// use harvsim_core::session::Simulation;
/// use harvsim_core::probe::EnvelopeProbe;
///
/// # fn main() -> Result<(), harvsim_core::CoreError> {
/// let mut session = Simulation::scenario1()
///     .duration(0.2)
///     .frequency_step_at(0.05)
///     .start()?;
/// let vc = session.harvester().storage_voltage_net();
/// let store = session.add_probe(EnvelopeProbe::terminal(vc));
/// session.run_to_end()?;
/// let envelope = session.probe::<EnvelopeProbe>(store).expect("probe kept its type");
/// assert!(envelope.min() > 1.5 && envelope.max() < 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: ScenarioConfig,
}

impl Simulation {
    /// Wraps an existing scenario configuration.
    pub fn from_config(config: ScenarioConfig) -> Self {
        Simulation { config }
    }

    /// Scenario 1 of the paper (70 → 71 Hz narrow tuning).
    pub fn scenario1() -> Self {
        Self::from_config(ScenarioConfig::scenario1())
    }

    /// Scenario 2 of the paper (70 → 84 Hz wide tuning).
    pub fn scenario2() -> Self {
        Self::from_config(ScenarioConfig::scenario2())
    }

    /// Sets the simulated span, in seconds.
    pub fn duration(mut self, duration_s: f64) -> Self {
        self.config.duration_s = duration_s;
        self
    }

    /// Sets the time of the ambient-frequency step, in seconds.
    pub fn frequency_step_at(mut self, time_s: f64) -> Self {
        self.config.frequency_step_time_s = time_s;
        self
    }

    /// Sets the initial supercapacitor pre-charge, in volts.
    pub fn initial_supercap_voltage(mut self, volts: f64) -> Self {
        self.config.initial_supercap_voltage = volts;
        self
    }

    /// Selects the analogue engine.
    pub fn engine(mut self, engine: SimulationEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Shorthand for the state-space engine with explicit solver options.
    pub fn solver_options(self, options: SolverOptions) -> Self {
        self.engine(SimulationEngine::StateSpace(options))
    }

    /// Shorthand for the Newton–Raphson baseline with explicit options.
    pub fn baseline_options(self, options: BaselineOptions) -> Self {
        self.engine(SimulationEngine::NewtonRaphson(options))
    }

    /// Attaches a label carried into batch/sweep error attribution
    /// (see [`CoreError::Scenario`]).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = Some(label.into());
        self
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Validates the configuration, builds the harvester and opens a session
    /// positioned at `t = 0`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and model assembly failures.
    pub fn start(&self) -> Result<Session, CoreError> {
        self.config.validate()?;
        let harvester = self.config.build_harvester()?;
        let mut session = Session::start(
            harvester,
            self.config.controller,
            self.config.engine,
            self.config.duration_s,
            self.config.initial_supercap_voltage,
        )?;
        // A config-built session knows how to rebuild itself, which is what
        // makes it checkpointable (see [`Session::checkpoint`]).
        session.config = Some(self.config.clone());
        Ok(session)
    }
}

/// Handle to a probe registered with [`Session::add_probe`], used to retrieve
/// it (typed) during or after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeId(usize);

/// Progress signal returned by [`Session::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionStatus {
    /// The session has more work; the payload is the current simulation time.
    Running {
        /// Current simulation time, in seconds.
        time_s: f64,
    },
    /// The span is complete (all analogue segments marched, all due digital
    /// events processed).
    Finished,
}

/// Snapshot of a session's outcome (valid at any time; final once
/// [`Session::is_finished`]).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Simulation time the report was taken at, in seconds.
    pub time_s: f64,
    /// Whether the configured span is complete.
    pub finished: bool,
    /// Global analogue state at report time (the final state once finished).
    pub final_state: DVector,
    /// Analogue-engine work statistics accumulated so far.
    pub engine_stats: EngineStats,
    /// Digital-kernel process activations executed so far.
    pub digital_events: u64,
    /// Control actions applied by the digital side so far.
    pub control_events: Vec<ControlEvent>,
    /// High-water sum of [`Probe::memory_bytes`] across all attached probes —
    /// the observable memory cost of observation. Streaming-only sessions
    /// keep this constant in the simulated duration.
    pub peak_probe_bytes: usize,
}

impl SessionReport {
    /// Total engine wall-clock accumulated so far, both engines combined —
    /// the per-session billing quantity [`crate::service::SessionService`]
    /// draws. Monotone over a session's lifetime and carried across
    /// checkpoint/restore, so per-slice billing deltas telescope exactly to
    /// this final total (billing conservation).
    pub fn engine_time(&self) -> Duration {
        self.engine_stats.state_space.cpu_time + self.engine_stats.baseline.cpu_time
    }
}

/// The analogue engine behind a session: the engine options, the reusable
/// workspace, and — while an analogue segment is in flight (possibly paused)
/// — its resumable march.
enum EngineRuntime {
    StateSpace {
        options: SolverOptions,
        workspace: Box<SolverWorkspace>,
        march: Option<Box<StateSpaceMarch>>,
    },
    NewtonRaphson {
        options: BaselineOptions,
        workspace: Box<BaselineWorkspace>,
        march: Option<Box<BaselineMarch>>,
    },
}

impl EngineRuntime {
    fn march_time(&self) -> Option<f64> {
        match self {
            EngineRuntime::StateSpace { march, .. } => march.as_deref().map(StateSpaceMarch::time),
            EngineRuntime::NewtonRaphson { march, .. } => march.as_deref().map(BaselineMarch::time),
        }
    }

    fn march_active(&self) -> bool {
        self.march_time().is_some()
    }
}

/// Fans solver samples out to every attached probe — the [`SampleSink`] the
/// session hands to the marches. One dynamic dispatch per probe per accepted
/// step; with no probes attached the march output vanishes entirely.
struct ProbeFan<'a>(&'a mut [Box<dyn Probe>]);

impl SampleSink for ProbeFan<'_> {
    fn sample(&mut self, t: f64, states: &DVector, terminals: &DVector) {
        for probe in self.0.iter_mut() {
            probe.on_sample(t, states, terminals);
        }
    }

    fn final_sample(&mut self, t: f64, states: &DVector, terminals: &DVector) {
        for probe in self.0.iter_mut() {
            probe.on_final_sample(t, states, terminals);
        }
    }
}

/// Snapshot/mailbox through which the digital controller observes and
/// commands the analogue model. Reads are filled in from the analogue state
/// before every kernel activation; writes are collected and applied to the
/// blocks afterwards.
#[derive(Debug, Clone, Default)]
struct ControlMailbox {
    supercap_voltage: f64,
    ambient_hz: f64,
    resonant_hz: f64,
    requested_load_mode: Option<LoadMode>,
    requested_resonance_hz: Option<f64>,
}

impl HarvesterEnvironment for ControlMailbox {
    fn supercapacitor_voltage(&self) -> f64 {
        self.supercap_voltage
    }
    fn ambient_frequency_hz(&self) -> f64 {
        self.ambient_hz
    }
    fn resonant_frequency_hz(&self) -> f64 {
        self.requested_resonance_hz.unwrap_or(self.resonant_hz)
    }
    fn set_load_mode(&mut self, mode: LoadMode) {
        self.requested_load_mode = Some(mode);
    }
    fn set_resonant_frequency(&mut self, frequency_hz: f64) {
        self.requested_resonance_hz = Some(frequency_hz);
    }
}

/// A running (or paused, or finished) mixed-signal simulation.
///
/// Created by [`Simulation::start`] (or [`Session::start`] from an explicit
/// harvester). The session owns the harvester, the digital kernel, the
/// engine workspace and the probes; advancing it interleaves resumable
/// analogue march segments with digital-kernel event processing exactly as
/// the pre-session driver did — the arithmetic is bit-identical, only the
/// control flow is inverted.
pub struct Session {
    harvester: TunableHarvester,
    kernel: Kernel<ControlMailbox>,
    runtime: EngineRuntime,
    /// The scenario configuration the session was built from, when it came
    /// through [`Simulation::start`] — the rebuild recipe a checkpoint
    /// embeds. `None` for sessions opened over an ad-hoc harvester, which
    /// therefore cannot be checkpointed.
    config: Option<ScenarioConfig>,
    duration: f64,
    /// Committed time: the end of the last fully closed segment (the
    /// in-flight march, if any, is ahead of this).
    t: f64,
    /// Committed state matching `t`.
    x: DVector,
    /// End of the in-flight segment (meaningful while a march is active).
    segment_end: f64,
    probes: Vec<Box<dyn Probe>>,
    engine_stats: EngineStats,
    control_events: Vec<ControlEvent>,
    /// Engine wall-clock accumulated for the in-flight segment, booked into
    /// the segment's stats when it closes (pauses are not billed).
    pending_cpu: Duration,
    /// The diode-evaluation mode the caller's harvester arrived with. The
    /// session flips the live flag to match the engine policy (exact for the
    /// baseline, table companions for the state-space engine) and restores
    /// this value when handing the harvester back, so the policy never leaks
    /// into caller-owned configuration.
    caller_exact_companions: bool,
    peak_probe_bytes: usize,
    finished: bool,
}

impl Session {
    /// Opens a session over an explicit harvester model (the builder
    /// [`Simulation::start`] is the common entry point). The digital
    /// controller is spawned on its watchdog schedule and the supercapacitor
    /// pre-charged to `initial_supercap_voltage`.
    ///
    /// # Errors
    ///
    /// Propagates engine option validation, controller construction and
    /// initial-state failures; rejects a non-positive duration.
    pub fn start(
        mut harvester: TunableHarvester,
        controller_config: ControllerConfig,
        engine: SimulationEngine,
        duration_s: f64,
        initial_supercap_voltage: f64,
    ) -> Result<Self, CoreError> {
        if !(duration_s > 0.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "simulation duration must be positive, got {duration_s}"
            )));
        }
        // The baseline stands in for the commercial Newton–Raphson tools,
        // which evaluate the physical device equations at every iteration —
        // the PWL lookup table is the *proposed* technique's contribution, so
        // handing it to the baseline would let the comparison race the
        // technique against itself. Exact evaluation for the baseline
        // (unless its options opt out for the like-for-like ablation), table
        // companions for the state-space engine. The caller's own setting is
        // remembered and restored by [`Session::into_parts`].
        let caller_exact_companions = harvester.exact_diode_companions();
        harvester.set_exact_diode_companions(matches!(
            engine,
            SimulationEngine::NewtonRaphson(options) if options.exact_device_evaluation
        ));
        let runtime = match engine {
            SimulationEngine::StateSpace(options) => {
                options.validate()?;
                EngineRuntime::StateSpace {
                    options,
                    workspace: Box::new(SolverWorkspace::new()),
                    march: None,
                }
            }
            SimulationEngine::NewtonRaphson(options) => {
                options.validate()?;
                EngineRuntime::NewtonRaphson {
                    options,
                    workspace: Box::new(BaselineWorkspace::new()),
                    march: None,
                }
            }
        };
        let controller =
            MicroController::new(controller_config, harvester.resonant_frequency_hz())?;
        let mut kernel: Kernel<ControlMailbox> = Kernel::new();
        kernel.spawn_at(SimTime::from_secs_f64(controller_config.watchdog_period_s), controller);
        let x = harvester.initial_state(initial_supercap_voltage)?;
        Ok(Session {
            harvester,
            kernel,
            runtime,
            config: None,
            duration: duration_s,
            t: 0.0,
            x,
            segment_end: 0.0,
            probes: Vec::new(),
            engine_stats: EngineStats::default(),
            control_events: Vec::new(),
            pending_cpu: Duration::ZERO,
            caller_exact_companions,
            peak_probe_bytes: 0,
            finished: false,
        })
    }

    /// Adopts the **fast** states of a donor state vector as this session's
    /// initial condition — the warm-start path of the design-space explorer
    /// ([`crate::explore`]). The mechanical, coil, rail and intermediate
    /// Dickson-stage states are copied from `donor`; the supercapacitor
    /// branch states and the multiplier output stage keep this session's own
    /// configured pre-charge, so a warm start only skips the fast start-up
    /// transient and never imports the neighbouring point's stored energy —
    /// that is what keeps warm-started results within the deviation gate of
    /// cold-started references.
    ///
    /// Returns `true` when the donor was adopted and `false` when the
    /// validity guard rejected it (dimension mismatch, non-finite or
    /// implausibly large entries); on rejection the session keeps the cold
    /// initial state it already has.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the session has already
    /// advanced: a warm start replaces the *initial* condition at `t = 0`,
    /// never a mid-run state.
    pub fn adopt_initial_state(&mut self, donor: &[f64]) -> Result<bool, CoreError> {
        if self.t != 0.0 || self.runtime.march_active() || self.finished {
            return Err(CoreError::InvalidConfiguration(
                "warm-start adoption is only valid before the session advances past t = 0".into(),
            ));
        }
        if donor.len() != self.x.len() {
            return Ok(false);
        }
        // Every physical state of the harvester (displacement, velocity,
        // current, stage voltage) lives well inside ±1e3 in SI units; a donor
        // entry outside that bound is a diverged or foreign run.
        const PLAUSIBLE_BOUND: f64 = 1.0e3;
        if donor.iter().any(|value| !value.is_finite() || value.abs() > PLAUSIBLE_BOUND) {
            return Ok(false);
        }
        let supercap = self.harvester.supercap_state_offset();
        let output_stage = self.harvester.multiplier_state_offset()
            + self.harvester.multiplier().stage_count()
            - 1;
        for (i, &value) in donor.iter().enumerate() {
            if i == output_stage || (supercap..supercap + 3).contains(&i) {
                continue;
            }
            self.x[i] = value;
        }
        Ok(true)
    }

    /// Registers a probe; the returned id retrieves it later through
    /// [`Session::probe`] / [`Session::probe_mut`]. Probes added after the
    /// session has advanced only observe from the current time onward.
    pub fn add_probe<P: Probe>(&mut self, probe: P) -> ProbeId {
        self.probes.push(Box::new(probe));
        self.update_peak_probe_bytes();
        ProbeId(self.probes.len() - 1)
    }

    /// Typed access to a registered probe.
    pub fn probe<P: Probe>(&self, id: ProbeId) -> Option<&P> {
        let probe: &dyn Any = self.probes.get(id.0)?.as_ref();
        probe.downcast_ref::<P>()
    }

    /// Typed mutable access to a registered probe.
    pub fn probe_mut<P: Probe>(&mut self, id: ProbeId) -> Option<&mut P> {
        let probe: &mut dyn Any = self.probes.get_mut(id.0)?.as_mut();
        probe.downcast_mut::<P>()
    }

    /// The harvester model (retuned resonance, load mode evolve as the
    /// digital side acts). Net/state index lookups for probe construction
    /// live here.
    pub fn harvester(&self) -> &TunableHarvester {
        &self.harvester
    }

    /// Current simulation time, in seconds: the in-flight march position, or
    /// the last committed segment boundary.
    pub fn time(&self) -> f64 {
        self.runtime.march_time().unwrap_or(self.t)
    }

    /// Configured span, in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Whether the whole span has been simulated.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The label of the scenario this session was built from, if it was
    /// started via [`Simulation::start`] with a labelled configuration.
    /// Travels inside checkpoints, so a restored session still knows it —
    /// the service uses this to verify a recovered frame belongs to the job
    /// it is keyed under.
    pub fn scenario_label(&self) -> Option<&str> {
        self.config.as_ref().and_then(|config| config.label.as_deref())
    }

    /// Analogue-engine statistics accumulated over the closed segments.
    pub fn engine_stats(&self) -> &EngineStats {
        &self.engine_stats
    }

    /// Control actions applied so far.
    pub fn control_events(&self) -> &[ControlEvent] {
        &self.control_events
    }

    /// Advances the session by one unit of work — opening the next analogue
    /// segment, taking one accepted integration step, or closing a completed
    /// segment and processing its due digital events — and reports progress.
    /// This is the finest observation granularity; [`Session::run_until`]
    /// drives the same machine in a tight loop.
    ///
    /// # Errors
    ///
    /// Propagates engine and kernel failures; the session is not usable after
    /// an error.
    pub fn step(&mut self) -> Result<SessionStatus, CoreError> {
        if self.finished {
            return Ok(SessionStatus::Finished);
        }
        if !self.runtime.march_active() {
            if self.t >= self.duration - 1e-9 {
                self.finished = true;
                return Ok(SessionStatus::Finished);
            }
            self.open_segment()?;
            return Ok(SessionStatus::Running { time_s: self.time() });
        }
        let clock = Instant::now();
        let segment_done = self.march_steps(f64::INFINITY, true, None)?;
        self.pending_cpu += clock.elapsed();
        if segment_done {
            self.close_segment()?;
        }
        if self.finished {
            Ok(SessionStatus::Finished)
        } else {
            Ok(SessionStatus::Running { time_s: self.time() })
        }
    }

    /// Runs until the simulation time reaches `target` seconds (clamped to
    /// the configured duration), then pauses and returns the actual time.
    ///
    /// Pausing never truncates an integration step: the session stops at the
    /// first accepted step boundary at or past `target`, keeping the
    /// in-flight march alive, so a paused-and-resumed run takes *exactly* the
    /// steps an uninterrupted run takes — bit-identical trajectories, stats
    /// and control actions. Resume by calling `run_until` (or
    /// [`Session::run_to_end`]) again.
    ///
    /// # Errors
    ///
    /// Propagates engine and kernel failures.
    pub fn run_until(&mut self, target: f64) -> Result<f64, CoreError> {
        let target = target.min(self.duration);
        while !self.finished && self.time() < target - 1e-12 {
            if self.runtime.march_active() {
                let clock = Instant::now();
                let segment_done = self.march_steps(target, false, None)?;
                self.pending_cpu += clock.elapsed();
                if segment_done {
                    self.close_segment()?;
                }
            } else if self.t >= self.duration - 1e-9 {
                self.finished = true;
            } else {
                self.open_segment()?;
            }
        }
        self.update_peak_probe_bytes();
        Ok(self.time())
    }

    /// [`Session::run_until`] with a cooperative wall-clock watchdog: the
    /// deadline is checked between units of work and after every *accepted*
    /// integration step, so an expired deadline pauses the session at a step
    /// boundary — never truncating a step — and a paused-then-resumed run
    /// stays bit-identical to an uninterrupted one. At least one unit of
    /// work is performed per call even if the deadline already passed, so a
    /// scheduler retrying a preempted session always makes progress.
    ///
    /// Unlike `run_until`, reaching the configured duration here also closes
    /// the final segment bookkeeping (marking the session finished), so a
    /// slice-driven scheduler needs no separate run-to-end path.
    ///
    /// # Errors
    ///
    /// Propagates engine and kernel failures.
    pub fn run_until_deadline(
        &mut self,
        target: f64,
        deadline: Option<Instant>,
    ) -> Result<f64, CoreError> {
        let target = target.min(self.duration);
        let mut did_work = false;
        while !self.finished && self.time() < target - 1e-12 {
            if did_work && deadline.is_some_and(|at| Instant::now() >= at) {
                break;
            }
            if self.runtime.march_active() {
                let clock = Instant::now();
                let segment_done = self.march_steps(target, false, deadline)?;
                self.pending_cpu += clock.elapsed();
                if segment_done {
                    self.close_segment()?;
                }
            } else if self.t >= self.duration - 1e-9 {
                self.finished = true;
            } else {
                self.open_segment()?;
            }
            did_work = true;
        }
        // Close the final bookkeeping when the whole span is simulated (the
        // equivalent of `run_to_end`'s extra pass).
        if !self.finished && !self.runtime.march_active() && self.t >= self.duration - 1e-9 {
            self.finished = true;
        }
        self.update_peak_probe_bytes();
        Ok(self.time())
    }

    /// Runs the remaining span to completion.
    ///
    /// # Errors
    ///
    /// Propagates engine and kernel failures.
    pub fn run_to_end(&mut self) -> Result<(), CoreError> {
        while !self.finished {
            self.run_until(self.duration)?;
            // `run_until(duration)` leaves the loop once time reaches the
            // duration; one more pass closes the final segment bookkeeping.
            if !self.finished && !self.runtime.march_active() && self.t >= self.duration - 1e-9 {
                self.finished = true;
            }
        }
        Ok(())
    }

    /// Snapshot of the session outcome (final once the session finished).
    /// Mid-segment reports are current: the state and the engine statistics
    /// include the in-flight march's progress (with the segment's
    /// accumulated engine time billed provisionally), not just the last
    /// closed segment.
    pub fn report(&self) -> SessionReport {
        let mut engine_stats = self.engine_stats;
        let final_state = match &self.runtime {
            EngineRuntime::StateSpace { march: Some(march), .. } => {
                engine_stats.state_space.absorb(march.stats());
                engine_stats.state_space.cpu_time += self.pending_cpu;
                march.state().clone()
            }
            EngineRuntime::NewtonRaphson { march: Some(march), .. } => {
                engine_stats.baseline.absorb(march.stats());
                engine_stats.baseline.cpu_time += self.pending_cpu;
                march.state().clone()
            }
            _ => self.x.clone(),
        };
        SessionReport {
            time_s: self.time(),
            finished: self.finished,
            final_state,
            engine_stats,
            digital_events: self.kernel.events_processed(),
            control_events: self.control_events.clone(),
            peak_probe_bytes: self.peak_probe_bytes,
        }
    }

    /// Consumes the session, returning the report, the probes (for typed
    /// downcasting by the caller) and the harvester in its final state —
    /// with the diode-evaluation mode restored to what the caller configured
    /// (the engine policy the session applied is session-internal).
    pub fn into_parts(mut self) -> (SessionReport, Vec<Box<dyn Probe>>, TunableHarvester) {
        let report = self.report();
        self.harvester.set_exact_diode_companions(self.caller_exact_companions);
        (report, self.probes, self.harvester)
    }

    /// Serialises the session into a self-contained, versioned checkpoint
    /// frame (wire format v1 — see [`crate::checkpoint`] for the layout and
    /// the version policy). The frame embeds the scenario configuration the
    /// session was built from, every loop-carried runtime datum (committed
    /// state, in-flight march, digital schedule and process state, stamp
    /// caches, statistics, billing) and each probe's observation state, so
    /// [`Session::restore`] resumes **bit-identically**: the resumed run
    /// takes exactly the steps the uninterrupted run takes. Only the
    /// wall-clock `cpu_time` statistics differ across a save/load boundary —
    /// they measure the host, not the model.
    ///
    /// Checkpoints may be taken at any time: at `t = 0`, paused mid-segment
    /// (the in-flight march travels in the frame), at a segment boundary, or
    /// after the session finished.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfiguration`] if the session was opened over an
    /// ad-hoc harvester via [`Session::start`] — only sessions built by
    /// [`Simulation::start`] carry the configuration a checkpoint needs to
    /// rebuild the model.
    pub fn checkpoint(&self) -> Result<Vec<u8>, CoreError> {
        let config = self.config.as_ref().ok_or_else(|| {
            CoreError::InvalidConfiguration(
                "checkpointing requires a session built from a ScenarioConfig \
                 (Simulation::start); a session opened over an ad-hoc harvester \
                 cannot be rebuilt from bytes"
                    .into(),
            )
        })?;
        let rebuild = checkpoint::encode_config(config);
        let digest = checkpoint::fnv1a64(&rebuild);
        let mut w = ByteWriter::new();
        w.put_bytes(&rebuild);
        // Harvester runtime: the tuning force is saved raw (not the derived
        // resonant frequency) because force → frequency goes through a square
        // root that does not round-trip bit-exactly.
        w.put_f64(self.harvester.tuning_force());
        checkpoint::encode_load_mode(&mut w, self.harvester.load_mode());
        w.put_bool(self.harvester.exact_diode_companions());
        w.put_bool(self.caller_exact_companions);
        // Session scalars and committed state.
        w.put_f64(self.t);
        w.put_f64(self.segment_end);
        w.put_bool(self.finished);
        w.put_usize(self.peak_probe_bytes);
        w.put_vector(&self.x);
        // Accumulated statistics and billing.
        self.engine_stats.state_space.encode(&mut w);
        self.engine_stats.baseline.encode(&mut w);
        w.put_u64(self.pending_cpu.as_nanos() as u64);
        w.put_usize(self.control_events.len());
        for event in &self.control_events {
            w.put_f64(event.time_s);
            checkpoint::encode_load_mode(&mut w, event.load_mode);
            w.put_f64(event.resonant_frequency_hz);
        }
        // Digital kernel: clock, counters, pending queue (canonical sorted
        // order with original tie-break sequence numbers), process blobs.
        w.put_u64(self.kernel.now().as_nanos());
        w.put_u64(self.kernel.sequence());
        w.put_u64(self.kernel.events_processed());
        let queue = self.kernel.queue_snapshot();
        w.put_usize(queue.len());
        for (time, sequence, process) in queue {
            w.put_u64(time.as_nanos());
            w.put_u64(sequence);
            w.put_usize(process);
        }
        w.put_usize(self.kernel.process_count());
        for index in 0..self.kernel.process_count() {
            let blob = self.kernel.process_state(index).unwrap_or_default();
            w.put_bytes(&blob);
        }
        // Per-block stamp caches: loop-carried inputs to the relinearisation
        // skip paths and the Eq. 3 monitor scale.
        let stamp_cache = self.harvester.assembly().stamp_cache();
        w.put_usize(stamp_cache.len());
        for (static_scale, signature, stamped) in stamp_cache {
            w.put_f64(static_scale);
            w.put_bool(signature.is_some());
            w.put_u64(signature.unwrap_or(0));
            w.put_bool(stamped);
        }
        // The in-flight march, if the session is paused mid-segment.
        match &self.runtime {
            EngineRuntime::StateSpace { workspace, march: Some(march), .. } => {
                w.put_u8(1);
                march.encode(workspace, &mut w);
            }
            EngineRuntime::NewtonRaphson { march: Some(march), .. } => {
                w.put_u8(2);
                march.encode(&mut w);
            }
            _ => w.put_u8(0),
        }
        // Probe observation state, in registration order.
        w.put_usize(self.probes.len());
        for probe in &self.probes {
            w.put_bytes(&probe.save_state());
        }
        Ok(checkpoint::seal_frame(digest, &w.into_bytes()))
    }

    /// Rebuilds a probe-less session from a checkpoint frame. Equivalent to
    /// [`Session::restore_with_probes`] with an empty probe list — a frame
    /// that carries probe state is rejected (typed, not silently dropped),
    /// because restoring it without the probes would lose observations.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`] (via [`CoreError::Checkpoint`]) for
    /// truncated, corrupted, version-skewed or digest-mismatched frames;
    /// model-rebuild failures propagate as their own [`CoreError`] variants.
    pub fn restore(bytes: &[u8]) -> Result<Session, CoreError> {
        Ok(Self::restore_with_probes(bytes, Vec::new())?.0)
    }

    /// Rebuilds a session from a checkpoint frame, re-attaching `probes` —
    /// fresh instances of the same types, in the same order, as when the
    /// checkpoint was taken — and restoring each one's saved observation
    /// state into them. Returns the session plus the probes' new
    /// [`ProbeId`]s (always `0..n` in supplied order).
    ///
    /// The resumed session is bit-identical to the saved one: same future
    /// steps, same recorded numbers, same control actions. Wall-clock
    /// (`cpu_time`) statistics restart from the saved totals.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`] (via [`CoreError::Checkpoint`]) when the
    /// frame is truncated, corrupted ([`CheckpointError::ChecksumMismatch`]),
    /// from another format version, taken against a different configuration
    /// encoding ([`CheckpointError::DigestMismatch`]), or internally
    /// inconsistent with the rebuilt model — including a probe count or type
    /// mismatch with `probes`. Configuration validation and model assembly
    /// failures propagate unchanged.
    pub fn restore_with_probes(
        bytes: &[u8],
        probes: Vec<Box<dyn Probe>>,
    ) -> Result<(Session, Vec<ProbeId>), CoreError> {
        let (digest, payload) = checkpoint::open_frame(bytes)?;
        let mut r = ByteReader::new(payload);
        let rebuild = r.take_bytes()?;
        let found = checkpoint::fnv1a64(rebuild);
        if found != digest {
            return Err(CheckpointError::DigestMismatch { expected: digest, found }.into());
        }
        let mut rebuild_reader = ByteReader::new(rebuild);
        let config = checkpoint::decode_config(&mut rebuild_reader)?;
        rebuild_reader.expect_end()?;
        let mut session = Simulation::from_config(config).start()?;
        // Harvester runtime.
        let tuning_force = r.take_f64()?;
        let load_mode = checkpoint::decode_load_mode(&mut r)?;
        let exact_companions = r.take_bool()?;
        session.caller_exact_companions = r.take_bool()?;
        session.harvester.set_tuning_force(tuning_force);
        session.harvester.set_load_mode(load_mode);
        session.harvester.set_exact_diode_companions(exact_companions);
        // Session scalars and committed state.
        session.t = r.take_f64()?;
        session.segment_end = r.take_f64()?;
        session.finished = r.take_bool()?;
        session.peak_probe_bytes = r.take_usize()?;
        let x = r.take_vector()?;
        if x.len() != session.x.len() {
            return Err(checkpoint::malformed(format!(
                "saved state has {} entries, the rebuilt system has {}",
                x.len(),
                session.x.len()
            ))
            .into());
        }
        session.x = x;
        // Accumulated statistics and billing.
        session.engine_stats.state_space = SolverStats::decode(&mut r)?;
        session.engine_stats.baseline = BaselineStats::decode(&mut r)?;
        session.pending_cpu = Duration::from_nanos(r.take_u64()?);
        let event_count = r.take_usize()?;
        let mut control_events = Vec::new();
        for _ in 0..event_count {
            control_events.push(ControlEvent {
                time_s: r.take_f64()?,
                load_mode: checkpoint::decode_load_mode(&mut r)?,
                resonant_frequency_hz: r.take_f64()?,
            });
        }
        session.control_events = control_events;
        // Digital kernel.
        let now = SimTime::from_nanos(r.take_u64()?);
        let sequence = r.take_u64()?;
        let events_processed = r.take_u64()?;
        let queue_len = r.take_usize()?;
        let mut queue = Vec::new();
        for _ in 0..queue_len {
            let time = SimTime::from_nanos(r.take_u64()?);
            let seq = r.take_u64()?;
            let process = r.take_usize()?;
            queue.push((time, seq, process));
        }
        if !session.kernel.restore_schedule(now, sequence, events_processed, &queue) {
            return Err(checkpoint::malformed(
                "saved digital schedule is inconsistent with the rebuilt kernel",
            )
            .into());
        }
        let process_count = r.take_usize()?;
        if process_count != session.kernel.process_count() {
            return Err(checkpoint::malformed(format!(
                "checkpoint carries {process_count} digital process blobs, the rebuilt kernel \
                 has {} processes",
                session.kernel.process_count()
            ))
            .into());
        }
        for index in 0..process_count {
            let blob = r.take_bytes()?;
            if !session.kernel.restore_process_state(index, blob) {
                return Err(checkpoint::malformed(format!(
                    "digital process {index} rejected its saved state"
                ))
                .into());
            }
        }
        // Stamp caches.
        let cache_len = r.take_usize()?;
        let mut stamp_cache = Vec::new();
        for _ in 0..cache_len {
            let static_scale = r.take_f64()?;
            let has_signature = r.take_bool()?;
            let signature = r.take_u64()?;
            let stamped = r.take_bool()?;
            stamp_cache.push((static_scale, has_signature.then_some(signature), stamped));
        }
        if !session.harvester.assembly().restore_stamp_cache(&stamp_cache) {
            return Err(checkpoint::malformed(
                "stamp-cache block count does not match the rebuilt assembly",
            )
            .into());
        }
        // The in-flight march. The tag must agree with the engine the
        // configuration selects — the config is digest-pinned, so a
        // disagreement means the runtime section was doctored.
        let march_tag = r.take_u8()?;
        {
            let Session { runtime, harvester, .. } = &mut session;
            match (march_tag, runtime) {
                (0, EngineRuntime::StateSpace { march, .. }) => *march = None,
                (0, EngineRuntime::NewtonRaphson { march, .. }) => *march = None,
                (1, EngineRuntime::StateSpace { options, workspace, march }) => {
                    *march = Some(Box::new(StateSpaceMarch::decode(
                        *options,
                        &*harvester,
                        workspace,
                        &mut r,
                    )?));
                }
                (2, EngineRuntime::NewtonRaphson { options, workspace, march }) => {
                    *march = Some(Box::new(BaselineMarch::decode(
                        *options,
                        &*harvester,
                        workspace,
                        &mut r,
                    )?));
                }
                (tag @ (1 | 2), _) => {
                    return Err(checkpoint::malformed(format!(
                        "march tag {tag} does not match the configured engine"
                    ))
                    .into());
                }
                (tag, _) => {
                    return Err(checkpoint::malformed(format!("unknown march tag {tag}")).into());
                }
            }
        }
        // Probes: the caller supplies fresh instances of the saved types (in
        // registration order); each restores its own observation state.
        let probe_count = r.take_usize()?;
        if probe_count != probes.len() {
            return Err(checkpoint::malformed(format!(
                "checkpoint carries {probe_count} probe blobs but {} probes were supplied",
                probes.len()
            ))
            .into());
        }
        session.probes = probes;
        let mut ids = Vec::with_capacity(session.probes.len());
        for (index, probe) in session.probes.iter_mut().enumerate() {
            let blob = r.take_bytes()?;
            if !probe.restore_state(blob) {
                return Err(checkpoint::malformed(format!(
                    "probe {index} rejected its saved state (wrong probe type supplied?)"
                ))
                .into());
            }
            ids.push(ProbeId(index));
        }
        r.expect_end()?;
        session.update_peak_probe_bytes();
        Ok((session, ids))
    }

    /// Opens the next analogue segment `[t, min(next_event, duration)]` and
    /// arms the engine march over it.
    fn open_segment(&mut self) -> Result<(), CoreError> {
        let clock = Instant::now();
        let next_event = self
            .kernel
            .next_event_time()
            .map(|time| time.as_secs_f64())
            .unwrap_or(self.duration)
            .min(self.duration);
        let segment_end = next_event.max(self.t + 1e-9);
        self.segment_end = segment_end;
        for probe in &mut self.probes {
            probe.on_segment(self.t, segment_end);
        }
        let Session { runtime, harvester, t, x, .. } = self;
        match runtime {
            EngineRuntime::StateSpace { options, workspace, march } => {
                *march = Some(Box::new(StateSpaceMarch::begin(
                    *options,
                    &*harvester,
                    *t,
                    segment_end,
                    x,
                    workspace,
                )?));
            }
            EngineRuntime::NewtonRaphson { options, workspace, march } => {
                *march = Some(Box::new(BaselineMarch::begin(
                    *options,
                    &*harvester,
                    *t,
                    segment_end,
                    x,
                    workspace,
                )?));
            }
        }
        self.pending_cpu += clock.elapsed();
        Ok(())
    }

    /// Advances the in-flight march until it completes its segment, its time
    /// reaches `target`, or (checked only *after* each accepted step, so at
    /// least one step of progress is always made) the wall-clock `deadline`
    /// passes. `single` limits it to one accepted step. Returns whether the
    /// segment is complete.
    fn march_steps(
        &mut self,
        target: f64,
        single: bool,
        deadline: Option<Instant>,
    ) -> Result<bool, CoreError> {
        let Session { runtime, harvester, probes, .. } = self;
        let mut fan = ProbeFan(probes);
        match runtime {
            EngineRuntime::StateSpace { workspace, march: Some(march), .. } => {
                while !march.is_done() && march.time() < target - 1e-12 {
                    march.step(&*harvester, workspace, &mut fan)?;
                    if single || deadline.is_some_and(|at| Instant::now() >= at) {
                        break;
                    }
                }
                Ok(march.is_done())
            }
            EngineRuntime::NewtonRaphson { workspace, march: Some(march), .. } => {
                while !march.is_done() && march.time() < target - 1e-12 {
                    march.step(&*harvester, workspace, &mut fan)?;
                    if single || deadline.is_some_and(|at| Instant::now() >= at) {
                        break;
                    }
                }
                Ok(march.is_done())
            }
            _ => Ok(true),
        }
    }

    /// Closes a completed segment: emits the forced segment-end sample,
    /// books the segment statistics (including the accumulated engine
    /// wall-clock), commits time and state, and processes the digital events
    /// due at the boundary.
    fn close_segment(&mut self) -> Result<(), CoreError> {
        let clock = Instant::now();
        {
            let Session { runtime, harvester, probes, x, engine_stats, .. } = self;
            let mut fan = ProbeFan(probes);
            match runtime {
                EngineRuntime::StateSpace { workspace, march, .. } => {
                    if let Some(march) = march.take() {
                        let (x_end, stats) = march.finish(&*harvester, workspace, &mut fan)?;
                        *x = x_end;
                        engine_stats.state_space.absorb(&stats);
                    }
                }
                EngineRuntime::NewtonRaphson { march, .. } => {
                    if let Some(march) = march.take() {
                        let (x_end, stats) = march.finish(&mut fan);
                        *x = x_end;
                        engine_stats.baseline.absorb(&stats);
                    }
                }
            }
        }
        // Bill the segment's accumulated engine time (march time + the open
        // and close bookkeeping, matching what the run-to-completion drivers
        // measured) into the engine that ran it.
        let segment_cpu = self.pending_cpu + clock.elapsed();
        self.pending_cpu = Duration::ZERO;
        match &self.runtime {
            EngineRuntime::StateSpace { .. } => {
                self.engine_stats.state_space.cpu_time += segment_cpu
            }
            EngineRuntime::NewtonRaphson { .. } => {
                self.engine_stats.baseline.cpu_time += segment_cpu
            }
        }
        self.t = self.segment_end;
        self.update_peak_probe_bytes();
        self.process_due_events()?;
        if self.t >= self.duration - 1e-9 {
            self.finished = true;
        }
        Ok(())
    }

    /// Executes the digital-kernel events due at the current time, forwarding
    /// every activation and any resulting control action to the probes.
    fn process_due_events(&mut self) -> Result<(), CoreError> {
        let due = self
            .kernel
            .next_event_time()
            .map(|time| time.as_secs_f64() <= self.t + 1e-12)
            .unwrap_or(false);
        if !due {
            return Ok(());
        }
        let mut mailbox = ControlMailbox {
            supercap_voltage: self.harvester.supercapacitor_voltage(&self.x),
            ambient_hz: self.harvester.ambient_frequency_hz(self.t),
            resonant_hz: self.harvester.resonant_frequency_hz(),
            requested_load_mode: None,
            requested_resonance_hz: None,
        };
        {
            let Session { kernel, probes, t, .. } = self;
            kernel.run_until_with(SimTime::from_secs_f64(*t), &mut mailbox, |time, name| {
                let event = DigitalEvent::Activation {
                    time_s: time.as_secs_f64(),
                    process: name.to_string(),
                };
                for probe in probes.iter_mut() {
                    probe.on_event(&event);
                }
            })?;
        }
        let mut acted = false;
        if let Some(mode) = mailbox.requested_load_mode {
            self.harvester.set_load_mode(mode);
            acted = true;
        }
        if let Some(frequency) = mailbox.requested_resonance_hz {
            self.harvester.set_resonant_frequency(frequency);
            acted = true;
        }
        if acted {
            let event = ControlEvent {
                time_s: self.t,
                load_mode: self.harvester.load_mode(),
                resonant_frequency_hz: self.harvester.resonant_frequency_hz(),
            };
            self.control_events.push(event);
            let wrapped = DigitalEvent::Control(event);
            for probe in self.probes.iter_mut() {
                probe.on_event(&wrapped);
            }
        }
        Ok(())
    }

    fn update_peak_probe_bytes(&mut self) {
        let current: usize = self.probes.iter().map(|probe| probe.memory_bytes()).sum();
        self.peak_probe_bytes = self.peak_probe_bytes.max(current);
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("time_s", &self.time())
            .field("duration_s", &self.duration)
            .field("finished", &self.finished)
            .field("probes", &self.probes.len())
            .field("control_events", &self.control_events.len())
            .finish()
    }
}

/// Convenience used by the mixed-signal shim: a session pre-loaded with one
/// dense [`WaveformProbe`] at the engine's record interval — the exact
/// recording policy the pre-session engines had built in.
pub(crate) fn dense_capture_session(
    harvester: TunableHarvester,
    controller_config: ControllerConfig,
    engine: SimulationEngine,
    duration_s: f64,
    initial_supercap_voltage: f64,
) -> Result<Session, CoreError> {
    let record_interval = match &engine {
        SimulationEngine::StateSpace(options) => options.record_interval,
        SimulationEngine::NewtonRaphson(options) => options.record_interval,
    };
    let mut session =
        Session::start(harvester, controller_config, engine, duration_s, initial_supercap_voltage)?;
    session.add_probe(WaveformProbe::new(record_interval));
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{EnvelopeProbe, StepHistogramProbe};

    fn quick_simulation() -> Simulation {
        let mut config = ScenarioConfig::scenario1();
        config.duration_s = 0.2;
        config.frequency_step_time_s = 0.05;
        // Short watchdog so even sub-second spans exercise digital events.
        config.controller.watchdog_period_s = 0.08;
        config.controller.measurement_duration_s = 0.02;
        config.controller.tuning_update_interval_s = 0.01;
        config.controller.tuning_rate_hz_per_s = 10.0;
        config.controller.energy_threshold_v = 2.0;
        Simulation::from_config(config)
    }

    #[test]
    fn builder_round_trips_the_config() {
        let simulation = Simulation::scenario1()
            .duration(1.5)
            .frequency_step_at(0.25)
            .initial_supercap_voltage(2.4)
            .label("unit");
        assert_eq!(simulation.config().duration_s, 1.5);
        assert_eq!(simulation.config().frequency_step_time_s, 0.25);
        assert_eq!(simulation.config().initial_supercap_voltage, 2.4);
        assert_eq!(simulation.config().label.as_deref(), Some("unit"));
        assert!(Simulation::scenario2().config().duration_s > 0.0);
        // Invalid configurations fail at start, not at build.
        assert!(quick_simulation().duration(-1.0).start().is_err());
        let bad =
            quick_simulation().solver_options(SolverOptions { ab_order: 0, ..Default::default() });
        assert!(bad.start().is_err());
    }

    #[test]
    fn session_runs_to_end_and_reports() {
        let mut session = quick_simulation().start().unwrap();
        assert_eq!(session.time(), 0.0);
        assert!(!session.is_finished());
        let vc = session.harvester().storage_voltage_net();
        let envelope = session.add_probe(EnvelopeProbe::terminal(vc));
        let steps = session.add_probe(StepHistogramProbe::new());
        session.run_to_end().unwrap();
        assert!(session.is_finished());
        assert!((session.time() - 0.2).abs() < 1e-9);
        let report = session.report();
        assert!(report.finished);
        assert!(report.final_state.is_finite());
        assert!(report.engine_stats.state_space.steps > 100);
        assert!(report.digital_events > 0);
        assert!(report.peak_probe_bytes > 0);
        let envelope = session.probe::<EnvelopeProbe>(envelope).unwrap();
        // The storage-port voltage starts at the 2.5 V pre-charge and sags
        // under the tuning load, but stays positive and bounded.
        assert!(envelope.max() > 2.0 && envelope.max() < 4.0, "max {}", envelope.max());
        assert!(envelope.min() > 0.0, "min {}", envelope.min());
        assert!(envelope.samples() > 100);
        let histogram = session.probe::<StepHistogramProbe>(steps).unwrap();
        assert!(histogram.total_steps() > 0);
        assert!(histogram.min_dt() > 0.0 && histogram.max_dt() >= histogram.min_dt());
        // Wrong-typed retrieval is a clean None, not a panic.
        assert!(session.probe::<EnvelopeProbe>(steps).is_none());
        // Stepping a finished session reports Finished and changes nothing.
        assert_eq!(session.step().unwrap(), SessionStatus::Finished);
    }

    #[test]
    fn single_stepping_reaches_the_same_end() {
        let mut session =
            quick_simulation().duration(0.05).frequency_step_at(0.02).start().unwrap();
        let mut guard = 0usize;
        while !matches!(session.step().unwrap(), SessionStatus::Finished) {
            guard += 1;
            assert!(guard < 200_000, "session failed to finish");
        }
        assert!(session.is_finished());
        assert!((session.time() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut session = quick_simulation().start().unwrap();
        let paused_at = session.run_until(0.07).unwrap();
        // Pausing overshoots to the next accepted boundary, never undershoots.
        assert!(paused_at >= 0.07 - 1e-12);
        assert!(!session.is_finished());
        let report = session.report();
        assert!(!report.finished);
        assert!(report.time_s >= 0.07 - 1e-12);
        session.run_to_end().unwrap();
        assert!(session.is_finished());
    }

    /// A report taken mid-segment must be *current*: the in-flight march's
    /// state and step count, not the last committed segment boundary.
    #[test]
    fn mid_segment_reports_include_the_in_flight_march() {
        let mut session = quick_simulation().start().unwrap();
        // The first watchdog event is at 0.08 s, so 0.03 s is mid-segment.
        session.run_until(0.03).unwrap();
        let report = session.report();
        assert!(report.time_s >= 0.03 - 1e-12);
        assert!(
            report.engine_stats.state_space.steps > 100,
            "mid-segment steps visible: {}",
            report.engine_stats.state_space.steps
        );
        // The state reflects the march position, not the t = 0 initial
        // conditions (the generator states have left rest by 30 ms).
        let moving: f64 = report.final_state.as_slice()[..3].iter().map(|value| value.abs()).sum();
        assert!(moving > 1e-9, "state still at initial conditions: {:?}", report.final_state);
        session.run_to_end().unwrap();
        let done = session.report();
        assert!(done.finished);
        assert!(done.engine_stats.state_space.steps > report.engine_stats.state_space.steps);
    }

    /// The engine's device-evaluation policy is session-internal: a baseline
    /// session runs on exact Shockley companions, but the harvester handed
    /// back by `into_parts` (and therefore the shims' `ScenarioResult`)
    /// keeps the caller's configuration.
    #[test]
    fn engine_evaluation_policy_does_not_leak_into_the_returned_harvester() {
        let simulation = quick_simulation()
            .duration(0.05)
            .frequency_step_at(0.02)
            .baseline_options(crate::BaselineOptions::default());
        let mut session = simulation.start().unwrap();
        // Live during the run: the baseline evaluates exactly.
        assert!(session.harvester().exact_diode_companions());
        session.run_to_end().unwrap();
        let (_, _, harvester) = session.into_parts();
        assert!(
            !harvester.exact_diode_companions(),
            "the caller's harvester was configured with table companions"
        );
        // And the run-to-completion shim inherits the guarantee.
        let mut config = quick_simulation().config().clone();
        config.duration_s = 0.05;
        config.frequency_step_time_s = 0.02;
        config.engine = crate::SimulationEngine::NewtonRaphson(crate::BaselineOptions::default());
        let result = config.run().unwrap();
        assert!(!result.harvester.exact_diode_companions());
    }

    #[test]
    fn streaming_probe_memory_is_duration_independent() {
        let peak_for = |duration: f64| {
            let mut session = quick_simulation().duration(duration).start().unwrap();
            let vc = session.harvester().storage_voltage_net();
            session.add_probe(EnvelopeProbe::terminal(vc));
            session.add_probe(StepHistogramProbe::new());
            session.run_to_end().unwrap();
            session.report().peak_probe_bytes
        };
        let short = peak_for(0.1);
        let long = peak_for(0.3);
        assert_eq!(short, long, "streaming probes must be O(1) in the simulated span");
        assert!(short > 0);
    }
}
