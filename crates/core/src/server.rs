//! The session service's front door: a long-lived server that admits,
//! schedules, checkpoints and bills [`Session`]s on behalf of external
//! clients speaking the [`crate::protocol`] wire grammar — over a unix
//! socket, over stdin/stdout, or in-process via [`Server::execute`].
//!
//! # Architecture
//!
//! A [`Server`] owns a crash-safe [`SessionStore`] and a worker pool that
//! advances admitted sessions one time slice at a time, exactly like the
//! batch [`crate::service::SessionService`] — same class queues
//! ([`JobClass`] priority, EDF within class, starvation-proof aging), same
//! checkpoint-on-preempt durability, same panic quarantine, same
//! deterministic [`FaultPlan`] hooks. The difference is lifecycle: sessions
//! arrive one `submit` at a time, can be paused/resumed/cancelled mid-run,
//! and survive server restarts — a new [`Server::start`] over the same
//! store directory re-adopts every session the manifest records, and a
//! resubmission of a known id is **idempotent**: it re-admits from the
//! stored frame (or just reports the live state), never double-admits and
//! never double-bills.
//!
//! # Hardening
//!
//! - **Admission control**: [`ServerOptions::class_capacity`] bounds each
//!   class's accept queue; submits beyond it are shed with a typed
//!   [`WireError::Overloaded`] and counted in [`ServerStats::shed`].
//! - **Graceful drain**: the `drain` command stops admissions, lets
//!   in-flight slices finish, persists every resident session through the
//!   store (sealing the manifest), and shuts the workers down — the
//!   [`DrainReport`] accounts for every entry. A (fault-injected or real)
//!   kill *during* drain is recoverable: the store is manifest-consistent
//!   after every individual persist, so a restart resumes bit-identically.
//! - **Protocol faults**: connection handlers run the fault-injected
//!   [`FrameReader`]/[`FrameWriter`]; hostile bytes produce typed errors and
//!   never touch admitted sessions.
//!
//! Commands execute atomically under one state lock; slices (the expensive
//! part) run outside it.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::checkpoint::fnv1a64;
use crate::fault::{Fault, FaultPlan, FaultSite};
use crate::protocol::{
    parse_command, Command, FrameReader, FrameWriter, ProtocolError, Response, ServerStats,
    StatusInfo, SubmitSpec, WireError, WireState, MAX_FRAME_LEN,
};
use crate::service::{ClassQueues, JobClass};
use crate::session::{Session, SessionReport, Simulation};
use crate::store::SessionStore;
use crate::CoreError;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker thread count; `None` uses available parallelism.
    pub workers: Option<usize>,
    /// Simulated seconds per scheduling slice (see
    /// [`crate::service::ServiceOptions::slice_s`]).
    pub slice_s: f64,
    /// Cooperative per-slice wall-clock watchdog; `None` disarms it.
    pub slice_timeout: Option<Duration>,
    /// Bounded per-class admission: at most this many **resident**
    /// (admitted, unresolved — queued, running or paused) sessions per
    /// class. The front door always has a bound — unbounded accept queues
    /// are how servers die under load. Submits beyond it are shed typed.
    pub class_capacity: usize,
    /// Starvation bound for the class scheduler (see
    /// [`crate::service::ServiceOptions::aging_passes`]).
    pub aging_passes: u64,
    /// Maximum wire frame length for connections handled by this server.
    pub max_frame_len: usize,
    /// Deterministic fault plan: slice boundaries ([`FaultSite::SliceBoundary`])
    /// and the wire sites ([`FaultSite::WireRead`] / [`FaultSite::WireWrite`]);
    /// arm store sites on the store itself.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: None,
            slice_s: 0.05,
            slice_timeout: None,
            class_capacity: 64,
            aging_passes: 8,
            max_frame_len: MAX_FRAME_LEN,
            fault_plan: None,
        }
    }
}

impl ServerOptions {
    fn validate(&self) -> Result<(), CoreError> {
        if !(self.slice_s > 0.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "server slice must be positive, got {}",
                self.slice_s
            )));
        }
        if self.workers == Some(0) {
            return Err(CoreError::InvalidConfiguration(
                "server worker count must be at least 1".into(),
            ));
        }
        if self.class_capacity == 0 {
            return Err(CoreError::InvalidConfiguration(
                "server class capacity must admit at least one session".into(),
            ));
        }
        if self.max_frame_len < 64 {
            return Err(CoreError::InvalidConfiguration(format!(
                "server frame limit of {} bytes cannot fit the grammar (min 64)",
                self.max_frame_len
            )));
        }
        Ok(())
    }
}

/// What a completed drain accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Resident sessions whose latest frame is durable in the store (persisted
    /// by the drain, or already manifest-consistent).
    pub checkpointed: u64,
    /// Admitted-but-never-started sessions: nothing to checkpoint, they
    /// restart fresh when resubmitted after the restart.
    pub not_started: u64,
    /// Wall-clock drain duration.
    pub duration: Duration,
}

/// A parked session between slices (the server-side mirror of the batch
/// scheduler's parking states).
enum EntryParked {
    /// Admitted, never ran.
    Fresh(Box<Simulation>),
    /// Live session kept resident for cheap resumption.
    Live(Box<Session>),
    /// Checkpoint bytes (a paused session, or one parked during drain).
    Frozen(Arc<Vec<u8>>),
}

impl std::fmt::Debug for EntryParked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryParked::Fresh(_) => f.write_str("Fresh"),
            EntryParked::Live(_) => f.write_str("Live"),
            EntryParked::Frozen(frame) => write!(f, "Frozen({} bytes)", frame.len()),
        }
    }
}

/// Entry lifecycle. The entry map is the source of truth; queue tokens are
/// scheduling hints (a token whose entry is no longer `Queued` is dropped at
/// pop, which is how pause/cancel take effect without queue surgery).
#[derive(Debug, Clone, PartialEq)]
enum EntryState {
    Queued,
    Running,
    Paused,
    Done,
    Failed(String),
    Cancelled,
}

#[derive(Debug)]
struct Entry {
    class: JobClass,
    deadline_s: Option<f64>,
    state: EntryState,
    /// `None` while running, and for store-backed entries not yet
    /// materialised (recovered at startup; the first slice loads the frame).
    parked: Option<EntryParked>,
    billed: Duration,
    queue_latency: Duration,
    slices: u64,
    time_s: f64,
    steps: u64,
    final_state_fnv: Option<u64>,
    recovered: bool,
    pause_requested: bool,
    cancel_requested: bool,
}

impl Entry {
    fn wire_state(&self) -> WireState {
        match self.state {
            EntryState::Queued => WireState::Queued,
            EntryState::Running => WireState::Running,
            EntryState::Paused => WireState::Paused,
            EntryState::Done => WireState::Done,
            EntryState::Failed(_) => WireState::Failed,
            EntryState::Cancelled => WireState::Cancelled,
        }
    }
}

/// A run-queue token: the entry id plus its push timestamp (the unit of the
/// queue-latency ledger).
struct QueueItem {
    id: String,
    enqueued_at: Instant,
}

struct ServerState {
    entries: BTreeMap<String, Entry>,
    queue: ClassQueues<QueueItem>,
    /// Per-class resident (admitted, unresolved) session counts — the
    /// admission-control measure. Queue tokens can be stale; this cannot.
    resident: [u64; JobClass::COUNT],
    /// Slices currently advancing on workers.
    running: usize,
    draining: bool,
    drained: Option<DrainReport>,
    /// Workers exit; accept loops stop.
    shutdown: bool,
    /// A fault-injected service kill: like shutdown, but abrupt — in-flight
    /// work is discarded, drain aborts.
    killed: bool,
    offered: u64,
    admitted: u64,
    resubmitted: u64,
    shed: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
    queue_latency_ns: [u64; JobClass::COUNT],
}

struct ServerShared {
    store: SessionStore,
    options: ServerOptions,
    state: Mutex<ServerState>,
    /// Wakes workers (new queue tokens, shutdown).
    work: Condvar,
    /// Wakes the drain waiter (a running slice retired).
    idle: Condvar,
}

/// What one supervised slice produced (built outside the state lock).
enum SliceOutcome {
    Killed,
    Failed {
        detail: String,
        billed: Duration,
        time_s: f64,
        steps: u64,
    },
    Finished {
        report: Box<SessionReport>,
        billed: Duration,
    },
    Preempted {
        session: Box<Session>,
        frame: Arc<Vec<u8>>,
        billed: Duration,
        time_s: f64,
        steps: u64,
    },
}

/// The front-door server. Cheap to clone (connection handlers share one
/// state); see the [module docs](self) for the architecture.
#[derive(Clone)]
pub struct Server {
    shared: Arc<ServerShared>,
    /// Worker handles, joined by [`Server::join`].
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Starts a server over `store`: re-adopts every session the store's
    /// manifest records (as paused, resumable entries) and spawns the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfiguration`] for invalid options.
    pub fn start(store: SessionStore, options: ServerOptions) -> Result<Server, CoreError> {
        options.validate()?;
        let mut entries = BTreeMap::new();
        let mut residents = [0u64; JobClass::COUNT];
        for id in store.active_ids() {
            residents[JobClass::Batch.index()] += 1;
            // Store-backed, not yet materialised: the frame loads lazily on
            // the first slice after a resume/resubmit. Class and deadline are
            // not persisted — the resubmission (or a plain `resume`, which
            // keeps the batch default) supplies them.
            entries.insert(
                id,
                Entry {
                    class: JobClass::Batch,
                    deadline_s: None,
                    state: EntryState::Paused,
                    parked: None,
                    billed: Duration::ZERO,
                    queue_latency: Duration::ZERO,
                    slices: 0,
                    time_s: 0.0,
                    steps: 0,
                    final_state_fnv: None,
                    recovered: true,
                    pause_requested: false,
                    cancel_requested: false,
                },
            );
        }
        let default_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let worker_count = options.workers.unwrap_or(default_workers).max(1);
        let aging = options.aging_passes;
        let shared = Arc::new(ServerShared {
            store,
            options,
            state: Mutex::new(ServerState {
                entries,
                queue: ClassQueues::new(aging),
                resident: residents,
                running: 0,
                draining: false,
                drained: None,
                shutdown: false,
                killed: false,
                offered: 0,
                admitted: 0,
                resubmitted: 0,
                shed: 0,
                done: 0,
                failed: 0,
                cancelled: 0,
                queue_latency_ns: [0; JobClass::COUNT],
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server { shared, workers: Arc::new(Mutex::new(workers)) })
    }

    /// The store directory this server persists into.
    pub fn store_dir(&self) -> std::path::PathBuf {
        self.shared.store.dir().to_path_buf()
    }

    /// Whether the server has stopped (drained, or fault-killed).
    pub fn is_shutdown(&self) -> bool {
        let state = lock(&self.shared);
        state.shutdown || state.killed
    }

    /// Joins the worker pool (call after a drain or kill).
    pub fn join(&self) {
        let handles: Vec<_> =
            self.workers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Executes one command against the server state. This is the in-process
    /// face of the protocol — every transport funnels here, and every
    /// command is atomic under the state lock. Total: never panics, every
    /// failure is a typed [`Response::Error`].
    pub fn execute(&self, command: Command) -> Response {
        match command {
            Command::Ping => Response::Pong,
            Command::Submit(spec) => self.submit(spec),
            Command::Pause { id } => self.pause(&id),
            Command::Resume { id } => self.resume(&id),
            Command::Cancel { id } => self.cancel(&id),
            Command::Status { id } => self.status(&id),
            Command::Bill { id } => self.bill(&id),
            Command::Stats => Response::Stats(self.stats()),
            Command::Drain => self.drain(),
        }
    }

    /// Idempotent admission: a known id is reported (and, when it is a
    /// store-recovered entry, re-admitted from its frame) without a second
    /// admission or a second billing; a fresh id passes admission control.
    fn submit(&self, spec: SubmitSpec) -> Response {
        let mut state = lock(&self.shared);
        state.offered += 1;
        if let Some(entry) = state.entries.get_mut(&spec.id) {
            // The idempotency contract: this path never creates a session,
            // so a client retrying a submit whose reply was dropped — or
            // resubmitting its batch after a server restart — is safe.
            if entry.state == EntryState::Paused && entry.recovered && entry.slices == 0 {
                // Store-recovered and never run in this lifetime: adopt the
                // resubmitted class/deadline and re-enqueue from the frame.
                let previous = entry.class;
                entry.class = spec.class;
                entry.deadline_s = spec.deadline_s;
                entry.state = EntryState::Queued;
                let (class, deadline_s, id) = (entry.class, entry.deadline_s, spec.id.clone());
                state.resident[previous.index()] -= 1;
                state.resident[class.index()] += 1;
                state.resubmitted += 1;
                state.queue.push(class, deadline_s, QueueItem { id, enqueued_at: Instant::now() });
                self.shared.work.notify_one();
                return Response::Resubmitted { id: spec.id, state: WireState::Queued };
            }
            let wire = entry.wire_state();
            state.resubmitted += 1;
            return Response::Resubmitted { id: spec.id, state: wire };
        }
        if state.draining {
            return Response::Error(WireError::Draining);
        }
        let class = spec.class;
        let depth = state.resident[class.index()];
        let capacity = self.shared.options.class_capacity as u64;
        if depth >= capacity {
            state.shed += 1;
            return Response::Error(WireError::Overloaded { class, depth, capacity });
        }
        state.admitted += 1;
        state.resident[class.index()] += 1;
        let simulation = Box::new(spec.simulation());
        state.entries.insert(
            spec.id.clone(),
            Entry {
                class,
                deadline_s: spec.deadline_s,
                state: EntryState::Queued,
                parked: Some(EntryParked::Fresh(simulation)),
                billed: Duration::ZERO,
                queue_latency: Duration::ZERO,
                slices: 0,
                time_s: 0.0,
                steps: 0,
                final_state_fnv: None,
                recovered: false,
                pause_requested: false,
                cancel_requested: false,
            },
        );
        state.queue.push(
            class,
            spec.deadline_s,
            QueueItem { id: spec.id.clone(), enqueued_at: Instant::now() },
        );
        self.shared.work.notify_one();
        Response::Submitted { id: spec.id, class, depth: depth + 1 }
    }

    fn pause(&self, id: &str) -> Response {
        let mut state = lock(&self.shared);
        let Some(entry) = state.entries.get_mut(id) else {
            return Response::Error(WireError::UnknownSession { id: id.into() });
        };
        match entry.state {
            EntryState::Queued => {
                // The queue token goes stale; the parked session stays put
                // (and stays resident — paused work still holds its seat).
                entry.state = EntryState::Paused;
                Response::Paused { id: id.into() }
            }
            EntryState::Running => {
                // Takes effect at the slice boundary — the session is parked
                // as checkpoint bytes instead of being requeued.
                entry.pause_requested = true;
                Response::Paused { id: id.into() }
            }
            EntryState::Paused => Response::Paused { id: id.into() },
            _ => Response::Error(WireError::InvalidState {
                id: id.into(),
                state: entry.wire_state(),
            }),
        }
    }

    fn resume(&self, id: &str) -> Response {
        let mut state = lock(&self.shared);
        if state.draining {
            return Response::Error(WireError::Draining);
        }
        let Some(entry) = state.entries.get_mut(id) else {
            return Response::Error(WireError::UnknownSession { id: id.into() });
        };
        match entry.state {
            EntryState::Paused => {
                entry.state = EntryState::Queued;
                let (class, deadline_s) = (entry.class, entry.deadline_s);
                state.queue.push(
                    class,
                    deadline_s,
                    QueueItem { id: id.into(), enqueued_at: Instant::now() },
                );
                self.shared.work.notify_one();
                Response::Resumed { id: id.into() }
            }
            EntryState::Running => {
                // Cancels a pending pause; idempotent otherwise.
                entry.pause_requested = false;
                Response::Resumed { id: id.into() }
            }
            EntryState::Queued => Response::Resumed { id: id.into() },
            _ => Response::Error(WireError::InvalidState {
                id: id.into(),
                state: entry.wire_state(),
            }),
        }
    }

    fn cancel(&self, id: &str) -> Response {
        let mut state = lock(&self.shared);
        let Some(entry) = state.entries.get_mut(id) else {
            return Response::Error(WireError::UnknownSession { id: id.into() });
        };
        match entry.state {
            EntryState::Queued | EntryState::Paused => {
                entry.state = EntryState::Cancelled;
                entry.parked = None;
                let class = entry.class;
                state.cancelled += 1;
                state.resident[class.index()] -= 1;
                // Best-effort: a failed removal leaves a frame a restart
                // would re-adopt; the cancelled state still answers status
                // in this lifetime.
                let _ = self.shared.store.is_active(id) && self.shared.store.remove(id).is_ok();
                Response::Cancelled { id: id.into() }
            }
            EntryState::Running => {
                entry.cancel_requested = true;
                Response::Cancelled { id: id.into() }
            }
            EntryState::Cancelled => Response::Cancelled { id: id.into() },
            _ => Response::Error(WireError::InvalidState {
                id: id.into(),
                state: entry.wire_state(),
            }),
        }
    }

    fn status(&self, id: &str) -> Response {
        let state = lock(&self.shared);
        let Some(entry) = state.entries.get(id) else {
            return Response::Error(WireError::UnknownSession { id: id.into() });
        };
        Response::Status(StatusInfo {
            id: id.into(),
            class: entry.class,
            state: entry.wire_state(),
            time_s: entry.time_s,
            steps: entry.steps,
            billed_ns: entry.billed.as_nanos(),
            recovered: entry.recovered,
            final_state_fnv: entry.final_state_fnv,
        })
    }

    fn bill(&self, id: &str) -> Response {
        let state = lock(&self.shared);
        let Some(entry) = state.entries.get(id) else {
            return Response::Error(WireError::UnknownSession { id: id.into() });
        };
        Response::Billed { id: id.into(), billed_ns: entry.billed.as_nanos() }
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let state = lock(&self.shared);
        let mut depths = [0u64; JobClass::COUNT];
        for class in JobClass::ALL {
            depths[class.index()] = state.resident[class.index()];
        }
        ServerStats {
            draining: state.draining,
            offered: state.offered,
            admitted: state.admitted,
            resubmitted: state.resubmitted,
            shed: state.shed,
            done: state.done,
            failed: state.failed,
            cancelled: state.cancelled,
            depths,
            queue_latency_ns: state.queue_latency_ns,
        }
    }

    /// Graceful drain: stop admissions and scheduling, wait out in-flight
    /// slices, persist every resident session (sealing the store manifest
    /// with each write), then shut the worker pool down. Idempotent — a
    /// second `drain` returns the same report.
    fn drain(&self) -> Response {
        let started = Instant::now();
        let mut state = lock(&self.shared);
        if let Some(report) = state.drained {
            return drained_response(report);
        }
        if state.killed {
            return Response::Error(WireError::Failed("server was killed".into()));
        }
        state.draining = true;
        // Workers stop popping once draining; wait for in-flight slices.
        while state.running > 0 && !state.killed {
            state = self.shared.idle.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.killed {
            return Response::Error(WireError::Failed("server was killed during drain".into()));
        }
        let plan = self.shared.options.fault_plan.as_deref();
        let mut checkpointed = 0u64;
        let mut not_started = 0u64;
        let ids: Vec<String> = state.entries.keys().cloned().collect();
        for id in ids {
            let entry = state.entries.get_mut(&id).expect("id just listed");
            if !matches!(entry.state, EntryState::Queued | EntryState::Paused) {
                continue;
            }
            // The kill-during-drain torture: a crash between two persists
            // leaves a manifest-consistent store either way.
            if let Some(Fault::KillService) =
                plan.and_then(|p| p.decide(FaultSite::SliceBoundary, 0))
            {
                state.killed = true;
                state.shutdown = true;
                self.shared.work.notify_all();
                self.shared.idle.notify_all();
                return Response::Error(WireError::Failed("server was killed during drain".into()));
            }
            match entry.parked.take() {
                Some(EntryParked::Fresh(simulation)) => {
                    // Never ran: no frame to persist; it restarts fresh when
                    // resubmitted after the restart.
                    not_started += 1;
                    entry.parked = Some(EntryParked::Fresh(simulation));
                    entry.state = EntryState::Paused;
                }
                Some(EntryParked::Live(session)) => match session.checkpoint() {
                    Ok(bytes) => {
                        let frame = Arc::new(bytes);
                        if self.shared.store.put(&id, &frame).is_ok() {
                            checkpointed += 1;
                        }
                        entry.parked = Some(EntryParked::Frozen(frame));
                        entry.state = EntryState::Paused;
                    }
                    Err(err) => {
                        entry.state = EntryState::Failed(format!("checkpoint failed: {err}"));
                        state.failed += 1;
                    }
                },
                Some(EntryParked::Frozen(frame)) => {
                    // Re-persist: heals any earlier degraded (failed) write.
                    if self.shared.store.is_active(&id)
                        || self.shared.store.put(&id, &frame).is_ok()
                    {
                        checkpointed += 1;
                    }
                    entry.parked = Some(EntryParked::Frozen(frame));
                    entry.state = EntryState::Paused;
                }
                None => {
                    // Store-backed (recovered, never materialised): already
                    // durable and manifest-consistent.
                    if self.shared.store.is_active(&id) {
                        checkpointed += 1;
                    }
                    entry.state = EntryState::Paused;
                }
            }
        }
        let report = DrainReport { checkpointed, not_started, duration: started.elapsed() };
        state.drained = Some(report);
        state.shutdown = true;
        self.shared.work.notify_all();
        drained_response(report)
    }

    /// Serves one connection: frames in, typed responses out, faults
    /// injected per the server's plan. Returns when the peer closes cleanly,
    /// the server shuts down, or the connection dies (typed).
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] that ended the connection, if it did not end
    /// cleanly. Malformed *commands* are not connection errors — they are
    /// answered with `err protocol …` and the connection continues; only
    /// transport-level failures (disconnect, truncation, a frame past the
    /// length bound) close it.
    pub fn handle_connection<R: Read, W: Write>(
        &self,
        read: R,
        write: W,
    ) -> Result<(), ProtocolError> {
        let plan = self.shared.options.fault_plan.clone();
        let mut reader = FrameReader::new(read, self.shared.options.max_frame_len, plan.clone());
        let mut writer = FrameWriter::new(write, plan);
        loop {
            let frame = match reader.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => return Ok(()),
                Err(err @ (ProtocolError::Disconnected | ProtocolError::Truncated)) => {
                    return Err(err)
                }
                Err(err) => {
                    // Framing is unrecoverable (oversized frame, bad UTF-8,
                    // transport error): answer typed, then close.
                    let reply = Response::Error(WireError::Protocol(err.to_string()));
                    let _ = writer.write_frame(&reply.to_line());
                    return Err(err);
                }
            };
            if frame.trim().is_empty() {
                continue;
            }
            let response = match parse_command(&frame) {
                Ok(command) => self.execute(command),
                Err(err) => Response::Error(WireError::Protocol(err.to_string())),
            };
            let drained = matches!(response, Response::Drained { .. });
            writer.write_frame(&response.to_line())?;
            if drained || self.is_shutdown() {
                return Ok(());
            }
        }
    }

    /// Serves stdin/stdout until the input closes or the server drains.
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] that ended the stream, as in
    /// [`Server::handle_connection`].
    pub fn serve_stdio(&self) -> Result<(), ProtocolError> {
        self.handle_connection(std::io::stdin().lock(), std::io::stdout().lock())
    }

    /// Binds `path` and serves unix-socket connections (one handler thread
    /// each) until the server shuts down (drain or kill). A stale socket
    /// file at `path` is replaced.
    ///
    /// # Errors
    ///
    /// The bind/accept error, if the listener itself fails.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let server = self.clone();
                    std::thread::spawn(move || {
                        let Ok(read_half) = stream.try_clone() else { return };
                        let _ = server.handle_connection(read_half, stream);
                    });
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) => {
                    let _ = std::fs::remove_file(path);
                    return Err(err);
                }
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

fn drained_response(report: DrainReport) -> Response {
    Response::Drained {
        checkpointed: report.checkpointed,
        not_started: report.not_started,
        duration_ms: report.duration.as_millis() as u64,
    }
}

fn lock(shared: &ServerShared) -> MutexGuard<'_, ServerState> {
    // Same poison-recovery argument as the batch scheduler: slices panic
    // outside the lock, critical sections stay consistent.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker: pop a token, validate it against the entry map, run one
/// supervised slice outside the lock, commit. Stale tokens (their entry
/// paused/cancelled since the push) are dropped here — that is the whole
/// pause/cancel mechanism.
fn worker_loop(shared: &ServerShared) {
    loop {
        let (id, parked, carries_billing) = {
            let mut state = lock(shared);
            loop {
                if state.shutdown || state.killed {
                    return;
                }
                if !state.draining {
                    if let Some((class, item)) = state.queue.pop() {
                        let Some(entry) = state.entries.get_mut(&item.id) else { continue };
                        if entry.state != EntryState::Queued {
                            continue; // stale token
                        }
                        let waited = item.enqueued_at.elapsed();
                        entry.queue_latency += waited;
                        entry.state = EntryState::Running;
                        let carries = entry.recovered && entry.slices == 0;
                        let parked = entry.parked.take();
                        state.queue_latency_ns[class.index()] +=
                            u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
                        state.running += 1;
                        break (item.id, parked, carries);
                    }
                }
                state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            run_slice(shared, &id, parked, carries_billing)
        }));
        let outcome = run.unwrap_or_else(|payload| SliceOutcome::Failed {
            detail: format!("session panicked and was quarantined: {}", panic_payload(payload)),
            billed: Duration::ZERO,
            time_s: 0.0,
            steps: 0,
        });
        commit_slice(shared, &id, outcome);
    }
}

/// One scheduling slice, outside the lock: materialise (fresh start, live
/// reuse, thaw from bytes, or load from the store), advance one slice,
/// then finish or checkpoint-and-persist. Mirrors the batch scheduler's
/// slice discipline, so server results are bit-identical to sequential runs.
fn run_slice(
    shared: &ServerShared,
    id: &str,
    parked: Option<EntryParked>,
    carries_billing: bool,
) -> SliceOutcome {
    let options = &shared.options;
    let plan = options.fault_plan.as_deref();
    match plan.and_then(|p| p.decide(FaultSite::SliceBoundary, 0)) {
        Some(Fault::KillService) => return SliceOutcome::Killed,
        Some(Fault::Panic) => panic!("{}", FaultPlan::PANIC_MESSAGE),
        _ => {}
    }
    let session = match parked {
        Some(EntryParked::Fresh(simulation)) => simulation.start().map(Box::new),
        Some(EntryParked::Live(session)) => Ok(session),
        Some(EntryParked::Frozen(bytes)) => Session::restore(&bytes).map(Box::new),
        None => shared
            .store
            .get(id)
            .map_err(|err| {
                CoreError::InvalidConfiguration(format!(
                    "store-backed session `{id}` failed to load: {err}"
                ))
            })
            .and_then(|bytes| Session::restore(&bytes))
            .map(Box::new),
    };
    let mut session = match session {
        Ok(session) => session,
        Err(err) => {
            return SliceOutcome::Failed {
                detail: err.to_string(),
                billed: Duration::ZERO,
                time_s: 0.0,
                steps: 0,
            }
        }
    };
    // Identity backstop for recovered frames (same as the batch scheduler).
    if carries_billing {
        if let Some(label) = session.scenario_label() {
            if label != id {
                return SliceOutcome::Failed {
                    detail: format!(
                        "recovered checkpoint keyed `{id}` belongs to scenario `{label}`"
                    ),
                    billed: Duration::ZERO,
                    time_s: 0.0,
                    steps: 0,
                };
            }
        }
    }
    let billed_before = if carries_billing { Duration::ZERO } else { engine_time(&session) };
    let deadline = options.slice_timeout.map(|budget| Instant::now() + budget);
    let target = session.time() + options.slice_s;
    let advanced = session.run_until_deadline(target, deadline);
    let billed = engine_time(&session).saturating_sub(billed_before);
    let time_s = session.time();
    let steps = session.engine_stats().state_space.steps as u64;
    if let Err(err) = advanced {
        return SliceOutcome::Failed { detail: err.to_string(), billed, time_s, steps };
    }
    if session.is_finished() {
        let _ = shared.store.is_active(id) && shared.store.remove(id).is_ok();
        return SliceOutcome::Finished { report: Box::new(session.report()), billed };
    }
    let frame = match session.checkpoint() {
        Ok(bytes) => Arc::new(bytes),
        Err(err) => return SliceOutcome::Failed { detail: err.to_string(), billed, time_s, steps },
    };
    // Persist-on-preempt: the crash-recovery currency. A failed put degrades
    // (the resident frozen copy still carries the session).
    let _ = shared.store.put(id, &frame);
    SliceOutcome::Preempted { session, frame, billed, time_s, steps }
}

/// Books a slice's outcome and decides the entry's next state: requeue,
/// pause (requested or drain-parked), cancel, finish, or quarantine.
fn commit_slice(shared: &ServerShared, id: &str, outcome: SliceOutcome) {
    let mut state = lock(shared);
    state.running -= 1;
    match outcome {
        SliceOutcome::Killed => {
            state.killed = true;
            state.shutdown = true;
            shared.work.notify_all();
        }
        SliceOutcome::Failed { detail, billed, time_s, steps } => {
            if let Some(entry) = state.entries.get_mut(id) {
                entry.slices += 1;
                entry.billed += billed;
                entry.time_s = entry.time_s.max(time_s);
                entry.steps = entry.steps.max(steps);
                entry.state = EntryState::Failed(detail);
                entry.pause_requested = false;
                entry.cancel_requested = false;
                let class = entry.class;
                state.resident[class.index()] -= 1;
            }
            state.failed += 1;
        }
        SliceOutcome::Finished { report, billed } => {
            if let Some(entry) = state.entries.get_mut(id) {
                entry.slices += 1;
                entry.billed += billed;
                entry.time_s = report.time_s;
                entry.steps = report.engine_stats.state_space.steps as u64;
                entry.final_state_fnv = Some(final_state_fnv(&report));
                entry.state = EntryState::Done;
                entry.pause_requested = false;
                entry.cancel_requested = false;
                let class = entry.class;
                state.resident[class.index()] -= 1;
            }
            state.done += 1;
        }
        SliceOutcome::Preempted { session, frame, billed, time_s, steps } => {
            let mut requeue: Option<(JobClass, Option<f64>)> = None;
            let draining = state.draining;
            let mut cancelled = false;
            if let Some(entry) = state.entries.get_mut(id) {
                entry.slices += 1;
                entry.billed += billed;
                entry.time_s = time_s;
                entry.steps = steps;
                if entry.cancel_requested {
                    entry.cancel_requested = false;
                    entry.pause_requested = false;
                    entry.state = EntryState::Cancelled;
                    entry.parked = None;
                    let class = entry.class;
                    state.resident[class.index()] -= 1;
                    cancelled = true;
                } else if entry.pause_requested || draining {
                    entry.pause_requested = false;
                    // Frozen under pause/drain: the frame is already durable
                    // (persist-on-preempt), so a following drain or kill
                    // finds it manifest-consistent.
                    entry.parked = Some(EntryParked::Frozen(frame));
                    entry.state = EntryState::Paused;
                } else {
                    entry.parked = Some(EntryParked::Live(session));
                    entry.state = EntryState::Queued;
                    requeue = Some((entry.class, entry.deadline_s));
                }
            }
            if cancelled {
                state.cancelled += 1;
                let _ = shared.store.is_active(id) && shared.store.remove(id).is_ok();
            }
            if let Some((class, deadline_s)) = requeue {
                state.queue.push(
                    class,
                    deadline_s,
                    QueueItem { id: id.into(), enqueued_at: Instant::now() },
                );
                shared.work.notify_one();
            }
        }
    }
    if state.draining && state.running == 0 {
        shared.idle.notify_all();
    }
}

/// The wire-level bit-identity witness: FNV-1a over the final state vector's
/// little-endian bytes. Two runs agree on this iff they agree on every bit
/// of the final state.
fn final_state_fnv(report: &SessionReport) -> u64 {
    let mut bytes = Vec::with_capacity(report.final_state.len() * 8);
    for value in report.final_state.as_slice() {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn engine_time(session: &Session) -> Duration {
    // The report's total, not the raw engine counters: it folds in the
    // mid-segment pending engine time, so slices preempted inside a segment
    // still bill (and the deltas telescope to the final report exactly).
    session.report().engine_time()
}

fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "non-string panic payload".into(),
        },
    }
}
