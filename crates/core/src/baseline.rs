//! The Newton–Raphson baseline solver (the "existing technique" of the paper's
//! Tables I and II).
//!
//! The commercial simulators the paper measures — SystemVision (VHDL-AMS),
//! OrCAD PSPICE and a SystemC-A prototype — all share the same inner structure:
//! at every time step the complete nonlinear analogue system (differential
//! *and* algebraic equations together) is discretised with an implicit
//! integration formula and solved by Newton–Raphson iteration, which factorises
//! the full Jacobian one or more times per step. This module reproduces that
//! structure over the *same* assembled harvester model used by the proposed
//! technique, so speed and accuracy can be compared like-for-like:
//!
//! * unknowns per step: the next state `x_{n+1}` *and* the next terminal vector
//!   `y_{n+1}` (nothing is eliminated up front);
//! * residuals: the implicit integration formula for the states plus the
//!   algebraic constraints;
//! * inner loop: damped Newton–Raphson with an `(N+M)×(N+M)` LU factorisation
//!   per iteration.

use std::time::{Duration, Instant};

use harvsim_linalg::{DMatrix, DVector};
use harvsim_ode::solution::Trajectory;

use crate::assembly::AnalogueSystem;
use crate::CoreError;

/// Implicit formula used by the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMethod {
    /// First-order Backward Euler (the default of many SPICE engines).
    BackwardEuler,
    /// Second-order trapezoidal rule (the default of most VHDL-AMS solvers).
    Trapezoidal,
}

impl BaselineMethod {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineMethod::BackwardEuler => "backward-euler",
            BaselineMethod::Trapezoidal => "trapezoidal",
        }
    }
}

/// Options of the Newton–Raphson baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineOptions {
    /// Implicit integration formula.
    pub method: BaselineMethod,
    /// Fixed step size, in seconds. The baseline needs a step comparable to the
    /// proposed technique's to resolve the 70 Hz waveforms with similar
    /// accuracy — the cost difference is the per-step Newton iteration.
    pub step: f64,
    /// Newton residual tolerance.
    pub newton_tolerance: f64,
    /// Maximum Newton iterations per step.
    pub max_newton_iterations: usize,
    /// Newton damping factor in `(0, 1]`.
    pub damping: f64,
    /// Minimum spacing between recorded samples, in seconds.
    pub record_interval: f64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            method: BaselineMethod::Trapezoidal,
            step: 5e-5,
            newton_tolerance: 1e-9,
            max_newton_iterations: 30,
            damping: 1.0,
            record_interval: 1e-3,
        }
    }
}

impl BaselineOptions {
    /// Validates the option set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for inconsistent values.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.step > 0.0) || !self.step.is_finite() {
            return Err(CoreError::InvalidConfiguration(format!(
                "baseline step must be positive, got {}",
                self.step
            )));
        }
        if self.max_newton_iterations == 0 || !(self.newton_tolerance > 0.0) {
            return Err(CoreError::InvalidConfiguration(
                "newton iteration limit and tolerance must be positive".into(),
            ));
        }
        if !(self.damping > 0.0 && self.damping <= 1.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "damping must be in (0, 1], got {}",
                self.damping
            )));
        }
        if self.record_interval < 0.0 {
            return Err(CoreError::InvalidConfiguration(
                "record interval must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Work statistics of a baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaselineStats {
    /// Accepted time steps.
    pub steps: usize,
    /// Total Newton iterations across all steps.
    pub newton_iterations: usize,
    /// Total `(N+M)×(N+M)` LU factorisations.
    pub factorisations: usize,
    /// Wall-clock time spent inside the solver.
    pub cpu_time: Duration,
}

impl BaselineStats {
    /// Merges another set of statistics into this one.
    pub fn absorb(&mut self, other: &BaselineStats) {
        self.steps += other.steps;
        self.newton_iterations += other.newton_iterations;
        self.factorisations += other.factorisations;
        self.cpu_time += other.cpu_time;
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Sampled state trajectory.
    pub states: Trajectory,
    /// Sampled terminal trajectory.
    pub terminals: Trajectory,
    /// Final state.
    pub final_state: DVector,
    /// Work statistics.
    pub stats: BaselineStats,
}

/// The implicit Newton–Raphson DAE solver standing in for the commercial tools.
#[derive(Debug, Clone)]
pub struct NewtonRaphsonBaseline {
    options: BaselineOptions,
}

impl NewtonRaphsonBaseline {
    /// Creates the baseline solver.
    ///
    /// # Errors
    ///
    /// Propagates [`BaselineOptions::validate`] failures.
    pub fn new(options: BaselineOptions) -> Result<Self, CoreError> {
        options.validate()?;
        Ok(NewtonRaphsonBaseline { options })
    }

    /// The active options.
    pub fn options(&self) -> &BaselineOptions {
        &self.options
    }

    /// Integrates `system` over `[t0, t_end]`, recording into fresh trajectories.
    ///
    /// # Errors
    ///
    /// Reports Newton non-convergence, singular Jacobians and non-finite states.
    pub fn solve(
        &self,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
    ) -> Result<BaselineResult, CoreError> {
        let mut states = Trajectory::new();
        let mut terminals = Trajectory::new();
        let (final_state, stats) =
            self.solve_into(system, t0, t_end, x0, &mut states, &mut terminals)?;
        Ok(BaselineResult { states, terminals, final_state, stats })
    }

    /// Integrates one segment, appending to existing trajectories (mirror of
    /// [`crate::StateSpaceSolver::solve_into`] so the mixed-signal loop can use
    /// either engine interchangeably).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NewtonRaphsonBaseline::solve`].
    pub fn solve_into(
        &self,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
        states: &mut Trajectory,
        terminals: &mut Trajectory,
    ) -> Result<(DVector, BaselineStats), CoreError> {
        if !(t_end > t0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "integration span must be non-empty (t0 = {t0}, t_end = {t_end})"
            )));
        }
        if x0.len() != system.state_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "initial state has {} entries but the system has {} states",
                x0.len(),
                system.state_count()
            )));
        }
        let start = Instant::now();
        let n = system.state_count();
        let m = system.net_count();
        let theta = match self.options.method {
            BaselineMethod::BackwardEuler => 1.0,
            BaselineMethod::Trapezoidal => 0.5,
        };

        let mut stats = BaselineStats::default();
        let mut t = t0;
        let mut x = x0.clone();
        // Consistent initial terminal values from the algebraic equations.
        let mut y = {
            let lin = system.linearise_global(t, &x, &DVector::zeros(m))?;
            lin.solve_terminals(&x)?
        };
        let mut last_recorded = f64::NEG_INFINITY;

        while t < t_end - 1e-12 {
            if t - last_recorded >= self.options.record_interval {
                states.push(t, x.clone());
                terminals.push(t, y.clone());
                last_recorded = t;
            }
            let h = self.options.step.min(t_end - t);
            let t_next = t + h;

            // Explicit part of the formula: θ-weighted derivative at (t, x, y).
            let lin_now = system.linearise_global(t, &x, &y)?;
            let f_now = lin_now.state_derivative(&x, &y);

            // Newton iteration on z = [x_next; y_next], initial guess = present values.
            let mut x_next = x.clone();
            let mut y_next = y.clone();
            let mut converged = false;
            for _iteration in 0..self.options.max_newton_iterations {
                stats.newton_iterations += 1;
                let lin = system.linearise_global(t_next, &x_next, &y_next)?;
                let f_next = lin.state_derivative(&x_next, &y_next);

                // Residuals.
                let mut residual = DVector::zeros(n + m);
                for i in 0..n {
                    residual[i] =
                        x_next[i] - x[i] - h * (theta * f_next[i] + (1.0 - theta) * f_now[i]);
                }
                let mut constraint = lin.jyx.mul_vector(&x_next);
                constraint += &lin.jyy.mul_vector(&y_next);
                constraint += &lin.gy;
                for j in 0..m {
                    residual[n + j] = constraint[j];
                }
                if residual.norm_inf() < self.options.newton_tolerance {
                    converged = true;
                    break;
                }

                // Jacobian of the residual.
                let mut jac = DMatrix::zeros(n + m, n + m);
                let identity_minus = &DMatrix::identity(n) - &lin.jxx.scaled(h * theta);
                jac.set_block(0, 0, &identity_minus);
                jac.set_block(0, n, &lin.jxy.scaled(-h * theta));
                jac.set_block(n, 0, &lin.jyx);
                jac.set_block(n, n, &lin.jyy);

                let lu = jac.lu().map_err(|err| {
                    CoreError::IllPosedSystem(format!(
                        "baseline Newton Jacobian is singular: {err}"
                    ))
                })?;
                stats.factorisations += 1;
                let delta = lu.solve(&(-&residual))?;
                for i in 0..n {
                    x_next[i] += self.options.damping * delta[i];
                }
                for j in 0..m {
                    y_next[j] += self.options.damping * delta[n + j];
                }
                if !x_next.is_finite() || !y_next.is_finite() {
                    return Err(CoreError::Ode(harvsim_ode::OdeError::NonFiniteState {
                        time: t_next,
                    }));
                }
            }
            if !converged {
                return Err(CoreError::Ode(harvsim_ode::OdeError::NewtonDidNotConverge {
                    iterations: self.options.max_newton_iterations,
                    residual: f64::NAN,
                }));
            }

            x = x_next;
            y = y_next;
            t = t_next;
            stats.steps += 1;
        }

        states.push(t, x.clone());
        terminals.push(t, y.clone());
        stats.cpu_time = start.elapsed();
        Ok((x, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::GlobalLinearisation;
    use crate::solver::{SolverOptions, StateSpaceSolver};

    /// Nonlinear single-state test system with one terminal:
    /// ẋ = (y − x)/τ, algebraic constraint y = V0 − α·y³ + 0 (a soft-limited source),
    /// expressed through its Jacobians at the linearisation point.
    struct SoftSource {
        tau: f64,
        v0: f64,
        alpha: f64,
    }

    impl AnalogueSystem for SoftSource {
        fn state_count(&self) -> usize {
            1
        }
        fn net_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            vec!["x".into()]
        }
        fn net_names(&self) -> Vec<String> {
            vec!["v".into()]
        }
        fn linearise_global(
            &self,
            _t: f64,
            _x: &DVector,
            y: &DVector,
        ) -> Result<GlobalLinearisation, CoreError> {
            let yv = y[0];
            // Constraint r(y) = y + α·y³ − V0 = 0, linearised at yv:
            // ∂r/∂y = 1 + 3αy², affine term g = r(yv) − (∂r/∂y)·yv.
            let slope = 1.0 + 3.0 * self.alpha * yv * yv;
            let residual_at = yv + self.alpha * yv.powi(3) - self.v0;
            Ok(GlobalLinearisation {
                jxx: DMatrix::from_rows(&[&[-1.0 / self.tau]]).unwrap(),
                jxy: DMatrix::from_rows(&[&[1.0 / self.tau]]).unwrap(),
                ex: DVector::zeros(1),
                jyx: DMatrix::zeros(1, 1),
                jyy: DMatrix::from_rows(&[&[slope]]).unwrap(),
                gy: DVector::from_slice(&[residual_at - slope * yv]),
            })
        }
    }

    #[test]
    fn option_validation() {
        assert!(BaselineOptions::default().validate().is_ok());
        assert!(BaselineOptions { step: 0.0, ..Default::default() }.validate().is_err());
        assert!(BaselineOptions { max_newton_iterations: 0, ..Default::default() }
            .validate()
            .is_err());
        assert!(BaselineOptions { damping: 1.5, ..Default::default() }.validate().is_err());
        assert!(BaselineOptions { record_interval: -1.0, ..Default::default() }
            .validate()
            .is_err());
        assert_eq!(BaselineMethod::BackwardEuler.name(), "backward-euler");
        assert_eq!(BaselineMethod::Trapezoidal.name(), "trapezoidal");
    }

    #[test]
    fn baseline_converges_on_a_nonlinear_system() {
        let system = SoftSource { tau: 1e-3, v0: 2.0, alpha: 0.1 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let result = baseline.solve(&system, 0.0, 0.02, &DVector::zeros(1)).unwrap();
        // Steady state: x = y where y + 0.1·y³ = 2  ⇒  y ≈ 1.5945.
        let y_expected = 1.5945;
        assert!((result.final_state[0] - y_expected).abs() < 5e-3, "{:?}", result.final_state);
        assert!(result.stats.newton_iterations >= result.stats.steps);
        assert!(result.stats.factorisations > 0);
        assert!(result.stats.cpu_time.as_nanos() > 0);
    }

    #[test]
    fn baseline_and_state_space_engine_agree() {
        let system = SoftSource { tau: 1e-3, v0: 1.5, alpha: 0.05 };
        let x0 = DVector::zeros(1);
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let proposed = StateSpaceSolver::new(SolverOptions {
            initial_step: 2e-6,
            max_step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let reference = baseline.solve(&system, 0.0, 0.01, &x0).unwrap();
        let fast = proposed.solve(&system, 0.0, 0.01, &x0).unwrap();
        let deviation = fast.states.max_deviation(&reference.states, 0, 200).unwrap();
        assert!(deviation < 5e-3, "waveform deviation {deviation}");
    }

    #[test]
    fn backward_euler_variant_also_works() {
        let system = SoftSource { tau: 1e-3, v0: 1.0, alpha: 0.0 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            method: BaselineMethod::BackwardEuler,
            step: 1e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let result = baseline.solve(&system, 0.0, 0.01, &DVector::zeros(1)).unwrap();
        assert!((result.final_state[0] - 1.0).abs() < 1e-3);
        assert_eq!(baseline.options().method, BaselineMethod::BackwardEuler);
    }

    #[test]
    fn invalid_inputs_rejected_and_stats_absorb() {
        let system = SoftSource { tau: 1e-3, v0: 1.0, alpha: 0.0 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions::default()).unwrap();
        assert!(baseline.solve(&system, 1.0, 0.5, &DVector::zeros(1)).is_err());
        assert!(baseline.solve(&system, 0.0, 1.0, &DVector::zeros(2)).is_err());
        let mut a = BaselineStats { steps: 1, ..Default::default() };
        a.absorb(&BaselineStats { steps: 2, newton_iterations: 3, ..Default::default() });
        assert_eq!(a.steps, 3);
        assert_eq!(a.newton_iterations, 3);
    }
}
