//! The Newton–Raphson baseline solver (the "existing technique" of the paper's
//! Tables I and II).
//!
//! The commercial simulators the paper measures — SystemVision (VHDL-AMS),
//! OrCAD PSPICE and a SystemC-A prototype — all share the same inner structure:
//! at every time step the complete nonlinear analogue system (differential
//! *and* algebraic equations together) is discretised with an implicit
//! integration formula and solved by Newton–Raphson iteration, which factorises
//! the full Jacobian one or more times per step. This module reproduces that
//! structure over the *same* assembled harvester model used by the proposed
//! technique, so speed and accuracy can be compared like-for-like:
//!
//! * unknowns per step: the next state `x_{n+1}` *and* the next terminal vector
//!   `y_{n+1}` (nothing is eliminated up front);
//! * residuals: the implicit integration formula for the states plus the
//!   algebraic constraints;
//! * inner loop: damped Newton–Raphson with an `(N+M)×(N+M)` LU factorisation
//!   per iteration.

use std::time::{Duration, Instant};

use harvsim_linalg::{DMatrix, DVector, LuDecomposition};
use harvsim_ode::solution::{DecimatedRecorder, SampleSink, Trajectory};

use crate::assembly::{AnalogueSystem, GlobalLinearisation};
use crate::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use crate::CoreError;

/// Implicit formula used by the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMethod {
    /// First-order Backward Euler (the default of many SPICE engines).
    BackwardEuler,
    /// Second-order trapezoidal rule (the default of most VHDL-AMS solvers).
    Trapezoidal,
}

impl BaselineMethod {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineMethod::BackwardEuler => "backward-euler",
            BaselineMethod::Trapezoidal => "trapezoidal",
        }
    }
}

/// Options of the Newton–Raphson baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineOptions {
    /// Implicit integration formula.
    pub method: BaselineMethod,
    /// Fixed step size, in seconds. The baseline needs a step comparable to the
    /// proposed technique's to resolve the 70 Hz waveforms with similar
    /// accuracy — the cost difference is the per-step Newton iteration.
    pub step: f64,
    /// Newton residual tolerance.
    pub newton_tolerance: f64,
    /// Maximum Newton iterations per step.
    pub max_newton_iterations: usize,
    /// Newton damping factor in `(0, 1]`.
    pub damping: f64,
    /// Minimum spacing between recorded samples, in seconds.
    pub record_interval: f64,
    /// Evaluate the harvester's nonlinear devices through their *exact*
    /// physical equations (an `exp()` per diode per Newton iteration) instead
    /// of the PWL companion tables. On by default: the commercial tools this
    /// baseline stands in for evaluate device equations exactly — the lookup
    /// table is the proposed technique's contribution, and handing it to the
    /// baseline would let the comparison race the technique against itself.
    /// Turn off for the like-for-like ablation (both engines on the same PWL
    /// model, measuring integration differences only).
    pub exact_device_evaluation: bool,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            method: BaselineMethod::Trapezoidal,
            step: 5e-5,
            newton_tolerance: 1e-9,
            max_newton_iterations: 30,
            damping: 1.0,
            record_interval: 1e-3,
            exact_device_evaluation: true,
        }
    }
}

impl BaselineOptions {
    /// Validates the option set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for inconsistent values.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.step > 0.0) || !self.step.is_finite() {
            return Err(CoreError::InvalidConfiguration(format!(
                "baseline step must be positive, got {}",
                self.step
            )));
        }
        if self.max_newton_iterations == 0 || !(self.newton_tolerance > 0.0) {
            return Err(CoreError::InvalidConfiguration(
                "newton iteration limit and tolerance must be positive".into(),
            ));
        }
        if !(self.damping > 0.0 && self.damping <= 1.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "damping must be in (0, 1], got {}",
                self.damping
            )));
        }
        if self.record_interval < 0.0 {
            return Err(CoreError::InvalidConfiguration(
                "record interval must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Work statistics of a baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaselineStats {
    /// Accepted time steps.
    pub steps: usize,
    /// Total Newton iterations across all steps.
    pub newton_iterations: usize,
    /// Total `(N+M)×(N+M)` LU factorisations.
    pub factorisations: usize,
    /// Wall-clock time spent inside the solver.
    pub cpu_time: Duration,
}

impl BaselineStats {
    /// Merges another set of statistics into this one.
    pub fn absorb(&mut self, other: &BaselineStats) {
        self.steps += other.steps;
        self.newton_iterations += other.newton_iterations;
        self.factorisations += other.factorisations;
        self.cpu_time += other.cpu_time;
    }

    /// Serialises the counters into a checkpoint payload (`cpu_time` as
    /// nanoseconds; restored for billing continuity, excluded from
    /// bit-identity comparisons).
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.steps);
        w.put_usize(self.newton_iterations);
        w.put_usize(self.factorisations);
        w.put_u64(self.cpu_time.as_nanos() as u64);
    }

    /// Inverse of [`BaselineStats::encode`].
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        Ok(BaselineStats {
            steps: r.take_usize()?,
            newton_iterations: r.take_usize()?,
            factorisations: r.take_usize()?,
            cpu_time: Duration::from_nanos(r.take_u64()?),
        })
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Sampled state trajectory.
    pub states: Trajectory,
    /// Sampled terminal trajectory.
    pub terminals: Trajectory,
    /// Final state.
    pub final_state: DVector,
    /// Work statistics.
    pub stats: BaselineStats,
}

/// Preallocated buffers for the baseline's Newton iteration. The baseline must
/// stay *honest* — it factorises the full `(N+M)×(N+M)` Jacobian at every
/// Newton iteration, exactly like the commercial tools it stands in for — but
/// it must not be artificially slowed by allocator noise either, or the
/// Table I/II comparison would measure `malloc` instead of linear algebra.
/// Every per-step and per-iteration temporary therefore lives here; the LU is
/// re-factorised through [`LuDecomposition::factor_into`], which reuses its
/// storage.
#[derive(Debug, Clone, Default)]
pub struct BaselineWorkspace {
    /// Linearisation at the accepted point `t` (for the θ-weighted explicit part).
    lin_now: GlobalLinearisation,
    /// Linearisation at the Newton iterate `(t_next, x_next, y_next)`.
    lin: GlobalLinearisation,
    /// Derivative at the accepted point.
    f_now: DVector,
    /// Derivative at the Newton iterate.
    f_next: DVector,
    /// Newton iterate for the next state.
    x_next: DVector,
    /// Newton iterate for the next terminal vector.
    y_next: DVector,
    /// Stacked residual `[states; constraints]`, length `N+M`.
    residual: DVector,
    /// Constraint-residual scratch, length `M`.
    constraint: DVector,
    /// Newton update, length `N+M`.
    delta: DVector,
    /// Full Newton Jacobian, `(N+M)×(N+M)`.
    jac: DMatrix,
    /// Reused LU storage (re-factorised every iteration).
    lu: Option<LuDecomposition>,
}

impl BaselineWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for a system with `n` states and `m` nets, reusing
    /// existing storage when the dimensions already match.
    fn prepare(&mut self, n: usize, m: usize) {
        if self.lin.dimensions() != (n, m, m) || self.jac.rows() != n + m {
            self.lin_now = GlobalLinearisation::zeros(n, m, m);
            self.lin = GlobalLinearisation::zeros(n, m, m);
            self.f_now = DVector::zeros(n);
            self.f_next = DVector::zeros(n);
            self.x_next = DVector::zeros(n);
            self.y_next = DVector::zeros(m);
            self.residual = DVector::zeros(n + m);
            self.constraint = DVector::zeros(m);
            self.delta = DVector::zeros(n + m);
            self.jac = DMatrix::zeros(n + m, n + m);
        }
    }
}

/// The implicit Newton–Raphson DAE solver standing in for the commercial tools.
#[derive(Debug, Clone)]
pub struct NewtonRaphsonBaseline {
    options: BaselineOptions,
}

impl NewtonRaphsonBaseline {
    /// Creates the baseline solver.
    ///
    /// # Errors
    ///
    /// Propagates [`BaselineOptions::validate`] failures.
    pub fn new(options: BaselineOptions) -> Result<Self, CoreError> {
        options.validate()?;
        Ok(NewtonRaphsonBaseline { options })
    }

    /// The active options.
    pub fn options(&self) -> &BaselineOptions {
        &self.options
    }

    /// Integrates `system` over `[t0, t_end]`, recording into fresh trajectories.
    ///
    /// # Errors
    ///
    /// Reports Newton non-convergence, singular Jacobians and non-finite states.
    pub fn solve(
        &self,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
    ) -> Result<BaselineResult, CoreError> {
        let mut states = Trajectory::new();
        let mut terminals = Trajectory::new();
        let (final_state, stats) =
            self.solve_into(system, t0, t_end, x0, &mut states, &mut terminals)?;
        Ok(BaselineResult { states, terminals, final_state, stats })
    }

    /// Integrates one segment, appending to existing trajectories (mirror of
    /// [`crate::StateSpaceSolver::solve_into`] so the mixed-signal loop can use
    /// either engine interchangeably).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NewtonRaphsonBaseline::solve`].
    pub fn solve_into(
        &self,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
        states: &mut Trajectory,
        terminals: &mut Trajectory,
    ) -> Result<(DVector, BaselineStats), CoreError> {
        let mut workspace = BaselineWorkspace::new();
        self.solve_into_with(system, t0, t_end, x0, states, terminals, &mut workspace)
    }

    /// Integrates one segment reusing a caller-owned [`BaselineWorkspace`]
    /// (mirror of [`crate::StateSpaceSolver::solve_into_with`]). Numerically
    /// identical to [`NewtonRaphsonBaseline::solve_into`] — the workspace only
    /// changes where the Newton temporaries live, never their values.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NewtonRaphsonBaseline::solve`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_into_with(
        &self,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
        states: &mut Trajectory,
        terminals: &mut Trajectory,
        workspace: &mut BaselineWorkspace,
    ) -> Result<(DVector, BaselineStats), CoreError> {
        let start = Instant::now();
        let mut march = BaselineMarch::begin(self.options, system, t0, t_end, x0, workspace)?;
        let mut sink = DecimatedRecorder::new(states, terminals, self.options.record_interval);
        while !march.is_done() {
            march.step(system, workspace, &mut sink)?;
        }
        let (x, mut stats) = march.finish(&mut sink);
        stats.cpu_time = start.elapsed();
        Ok((x, stats))
    }
}

/// The baseline's fixed-step implicit loop as a resumable state machine — the
/// Newton–Raphson mirror of [`crate::solver::StateSpaceMarch`], so a
/// [`crate::session::Session`] can pause and resume either engine at any
/// accepted-step boundary with bit-identical arithmetic. Output goes through
/// a [`SampleSink`]; [`NewtonRaphsonBaseline::solve_into_with`] is a thin
/// begin/step/finish driver over it.
#[derive(Debug)]
pub(crate) struct BaselineMarch {
    options: BaselineOptions,
    t_end: f64,
    t: f64,
    x: DVector,
    y: DVector,
    theta: f64,
    stats: BaselineStats,
}

impl BaselineMarch {
    /// Validates the span, prepares the workspace and solves the algebraic
    /// equations for consistent initial terminal values.
    ///
    /// # Errors
    ///
    /// Same validation failures as [`NewtonRaphsonBaseline::solve`].
    pub(crate) fn begin(
        options: BaselineOptions,
        system: &dyn AnalogueSystem,
        t0: f64,
        t_end: f64,
        x0: &DVector,
        workspace: &mut BaselineWorkspace,
    ) -> Result<Self, CoreError> {
        if !(t_end > t0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "integration span must be non-empty (t0 = {t0}, t_end = {t_end})"
            )));
        }
        if x0.len() != system.state_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "initial state has {} entries but the system has {} states",
                x0.len(),
                system.state_count()
            )));
        }
        let n = system.state_count();
        let m = system.net_count();
        workspace.prepare(n, m);
        let theta = match options.method {
            BaselineMethod::BackwardEuler => 1.0,
            BaselineMethod::Trapezoidal => 0.5,
        };
        let x = x0.clone();
        // Consistent initial terminal values from the algebraic equations.
        let y = {
            workspace.y_next.fill(0.0);
            system.linearise_global_into(t0, &x, &workspace.y_next, &mut workspace.lin_now)?;
            workspace.lin_now.solve_terminals(&x)?
        };
        Ok(BaselineMarch { options, t_end, t: t0, x, y, theta, stats: BaselineStats::default() })
    }

    /// Serialises the march into a checkpoint payload. The baseline's
    /// workspace is pure per-step scratch (every buffer is rewritten before
    /// it is read), so the loop-carried state is just the march struct
    /// itself.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.t_end);
        w.put_f64(self.t);
        w.put_vector(&self.x);
        w.put_vector(&self.y);
        w.put_f64(self.theta);
        self.stats.encode(w);
    }

    /// Rebuilds a march serialised by [`BaselineMarch::encode`], preparing
    /// the workspace exactly as [`BaselineMarch::begin`] would.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`] (wrapped in [`CoreError::Checkpoint`]) on
    /// dimension mismatches against the system.
    pub(crate) fn decode(
        options: BaselineOptions,
        system: &dyn AnalogueSystem,
        workspace: &mut BaselineWorkspace,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, CoreError> {
        let t_end = r.take_f64()?;
        let t = r.take_f64()?;
        let x = r.take_vector()?;
        let y = r.take_vector()?;
        let theta = r.take_f64()?;
        let stats = BaselineStats::decode(r)?;
        let n = system.state_count();
        let m = system.net_count();
        if x.len() != n || y.len() != m {
            return Err(crate::checkpoint::malformed(format!(
                "saved baseline march has {}/{} state/terminal entries, the system has {n}/{m}",
                x.len(),
                y.len()
            ))
            .into());
        }
        workspace.prepare(n, m);
        Ok(BaselineMarch { options, t_end, t, x, y, theta, stats })
    }

    /// Current integration time.
    pub(crate) fn time(&self) -> f64 {
        self.t
    }

    /// State at the current integration time (mid-segment view).
    pub(crate) fn state(&self) -> &DVector {
        &self.x
    }

    /// Work statistics accumulated so far in this segment (mid-segment view;
    /// `cpu_time` is tracked by the driver, not here).
    pub(crate) fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Whether the march has reached the span end.
    pub(crate) fn is_done(&self) -> bool {
        self.t >= self.t_end - 1e-12
    }

    /// Advances by one accepted implicit step, offering the pre-step point to
    /// `sink`. Calling it on a finished march is a no-op.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NewtonRaphsonBaseline::solve`].
    pub(crate) fn step(
        &mut self,
        system: &dyn AnalogueSystem,
        workspace: &mut BaselineWorkspace,
        sink: &mut dyn SampleSink,
    ) -> Result<(), CoreError> {
        if self.is_done() {
            return Ok(());
        }
        let n = self.x.len();
        let m = self.y.len();
        let t = self.t;
        let theta = self.theta;
        sink.sample(t, &self.x, &self.y);
        let h = self.options.step.min(self.t_end - t);
        let t_next = t + h;

        // Explicit part of the formula: θ-weighted derivative at (t, x, y).
        system.linearise_global_into(t, &self.x, &self.y, &mut workspace.lin_now)?;
        workspace.lin_now.state_derivative_into(&self.x, &self.y, &mut workspace.f_now);

        // Newton iteration on z = [x_next; y_next], initial guess = present values.
        workspace.x_next.copy_from(&self.x);
        workspace.y_next.copy_from(&self.y);
        let x = &self.x;
        let mut converged = false;
        for _iteration in 0..self.options.max_newton_iterations {
            self.stats.newton_iterations += 1;
            system.linearise_global_into(
                t_next,
                &workspace.x_next,
                &workspace.y_next,
                &mut workspace.lin,
            )?;
            let ws = &mut *workspace;
            ws.lin.state_derivative_into(&ws.x_next, &ws.y_next, &mut ws.f_next);

            // Residuals.
            for i in 0..n {
                ws.residual[i] =
                    ws.x_next[i] - x[i] - h * (theta * ws.f_next[i] + (1.0 - theta) * ws.f_now[i]);
            }
            ws.lin.jyx.mul_vector_into(&ws.x_next, &mut ws.constraint);
            ws.lin.jyy.mul_vector_add_into(&ws.y_next, &mut ws.constraint);
            ws.constraint += &ws.lin.gy;
            for j in 0..m {
                ws.residual[n + j] = ws.constraint[j];
            }
            if ws.residual.norm_inf() < self.options.newton_tolerance {
                converged = true;
                break;
            }

            // Jacobian of the residual, stamped block by block into the
            // preallocated (N+M)² buffer; the four loops below assign
            // every entry, so no clearing pass is needed.
            let ht = h * theta;
            for i in 0..n {
                for j in 0..n {
                    let identity = if i == j { 1.0 } else { 0.0 };
                    ws.jac[(i, j)] = identity - ht * ws.lin.jxx[(i, j)];
                }
                for j in 0..m {
                    ws.jac[(i, n + j)] = -ht * ws.lin.jxy[(i, j)];
                }
            }
            for i in 0..m {
                for j in 0..n {
                    ws.jac[(n + i, j)] = ws.lin.jyx[(i, j)];
                }
                for j in 0..m {
                    ws.jac[(n + i, n + j)] = ws.lin.jyy[(i, j)];
                }
            }

            // Honest per-iteration factorisation, but into reused storage.
            let factorised = match ws.lu.as_mut() {
                Some(lu) => lu.factor_into(&ws.jac),
                None => ws.jac.lu().map(|lu| {
                    ws.lu = Some(lu);
                }),
            };
            factorised.map_err(|err| {
                CoreError::IllPosedSystem(format!("baseline Newton Jacobian is singular: {err}"))
            })?;
            self.stats.factorisations += 1;
            let lu = ws.lu.as_ref().expect("factorised above");
            ws.residual.scale_mut(-1.0);
            lu.solve_into(&ws.residual, &mut ws.delta)?;
            for i in 0..n {
                ws.x_next[i] += self.options.damping * ws.delta[i];
            }
            for j in 0..m {
                ws.y_next[j] += self.options.damping * ws.delta[n + j];
            }
            if !ws.x_next.is_finite() || !ws.y_next.is_finite() {
                return Err(CoreError::Ode(harvsim_ode::OdeError::NonFiniteState { time: t_next }));
            }
        }
        if !converged {
            return Err(CoreError::Ode(harvsim_ode::OdeError::NewtonDidNotConverge {
                iterations: self.options.max_newton_iterations,
                residual: f64::NAN,
            }));
        }

        self.x.copy_from(&workspace.x_next);
        self.y.copy_from(&workspace.y_next);
        self.t = t_next;
        self.stats.steps += 1;
        Ok(())
    }

    /// Completes the span: offers the forced `t_end` sample through the sink
    /// and returns the final state and the segment statistics (`cpu_time`
    /// left at zero — wall-clock accounting belongs to the driver).
    pub(crate) fn finish(self, sink: &mut dyn SampleSink) -> (DVector, BaselineStats) {
        debug_assert!(self.is_done(), "finish() called with the span incomplete");
        sink.final_sample(self.t, &self.x, &self.y);
        (self.x, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::GlobalLinearisation;
    use crate::solver::{SolverOptions, StateSpaceSolver};

    /// Nonlinear single-state test system with one terminal:
    /// ẋ = (y − x)/τ, algebraic constraint y = V0 − α·y³ + 0 (a soft-limited source),
    /// expressed through its Jacobians at the linearisation point.
    struct SoftSource {
        tau: f64,
        v0: f64,
        alpha: f64,
    }

    impl AnalogueSystem for SoftSource {
        fn state_count(&self) -> usize {
            1
        }
        fn net_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            vec!["x".into()]
        }
        fn net_names(&self) -> Vec<String> {
            vec!["v".into()]
        }
        fn linearise_global(
            &self,
            _t: f64,
            _x: &DVector,
            y: &DVector,
        ) -> Result<GlobalLinearisation, CoreError> {
            let yv = y[0];
            // Constraint r(y) = y + α·y³ − V0 = 0, linearised at yv:
            // ∂r/∂y = 1 + 3αy², affine term g = r(yv) − (∂r/∂y)·yv.
            let slope = 1.0 + 3.0 * self.alpha * yv * yv;
            let residual_at = yv + self.alpha * yv.powi(3) - self.v0;
            Ok(GlobalLinearisation {
                jxx: DMatrix::from_rows(&[&[-1.0 / self.tau]]).unwrap(),
                jxy: DMatrix::from_rows(&[&[1.0 / self.tau]]).unwrap(),
                ex: DVector::zeros(1),
                jyx: DMatrix::zeros(1, 1),
                jyy: DMatrix::from_rows(&[&[slope]]).unwrap(),
                gy: DVector::from_slice(&[residual_at - slope * yv]),
            })
        }
    }

    #[test]
    fn option_validation() {
        assert!(BaselineOptions::default().validate().is_ok());
        assert!(BaselineOptions { step: 0.0, ..Default::default() }.validate().is_err());
        assert!(BaselineOptions { max_newton_iterations: 0, ..Default::default() }
            .validate()
            .is_err());
        assert!(BaselineOptions { damping: 1.5, ..Default::default() }.validate().is_err());
        assert!(BaselineOptions { record_interval: -1.0, ..Default::default() }
            .validate()
            .is_err());
        assert_eq!(BaselineMethod::BackwardEuler.name(), "backward-euler");
        assert_eq!(BaselineMethod::Trapezoidal.name(), "trapezoidal");
    }

    #[test]
    fn baseline_converges_on_a_nonlinear_system() {
        let system = SoftSource { tau: 1e-3, v0: 2.0, alpha: 0.1 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let result = baseline.solve(&system, 0.0, 0.02, &DVector::zeros(1)).unwrap();
        // Steady state: x = y where y + 0.1·y³ = 2  ⇒  y ≈ 1.5945.
        let y_expected = 1.5945;
        assert!((result.final_state[0] - y_expected).abs() < 5e-3, "{:?}", result.final_state);
        assert!(result.stats.newton_iterations >= result.stats.steps);
        assert!(result.stats.factorisations > 0);
        assert!(result.stats.cpu_time.as_nanos() > 0);
    }

    #[test]
    fn baseline_and_state_space_engine_agree() {
        let system = SoftSource { tau: 1e-3, v0: 1.5, alpha: 0.05 };
        let x0 = DVector::zeros(1);
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let proposed = StateSpaceSolver::new(SolverOptions {
            initial_step: 2e-6,
            max_step: 2e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let reference = baseline.solve(&system, 0.0, 0.01, &x0).unwrap();
        let fast = proposed.solve(&system, 0.0, 0.01, &x0).unwrap();
        let deviation = fast.states.max_deviation(&reference.states, 0, 200).unwrap();
        // The bound is dominated by the trapezoidal baseline's own
        // discretisation error at its 20 µs grid, not by the state-space
        // engine: the governor's order-4 march lands ~13× closer to the exact
        // solution than the old order-2 default, which happened to track the
        // baseline's error more closely.
        assert!(deviation < 8e-3, "waveform deviation {deviation}");
    }

    #[test]
    fn backward_euler_variant_also_works() {
        let system = SoftSource { tau: 1e-3, v0: 1.0, alpha: 0.0 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions {
            method: BaselineMethod::BackwardEuler,
            step: 1e-5,
            record_interval: 0.0,
            ..Default::default()
        })
        .unwrap();
        let result = baseline.solve(&system, 0.0, 0.01, &DVector::zeros(1)).unwrap();
        assert!((result.final_state[0] - 1.0).abs() < 1e-3);
        assert_eq!(baseline.options().method, BaselineMethod::BackwardEuler);
    }

    #[test]
    fn invalid_inputs_rejected_and_stats_absorb() {
        let system = SoftSource { tau: 1e-3, v0: 1.0, alpha: 0.0 };
        let baseline = NewtonRaphsonBaseline::new(BaselineOptions::default()).unwrap();
        assert!(baseline.solve(&system, 1.0, 0.5, &DVector::zeros(1)).is_err());
        assert!(baseline.solve(&system, 0.0, 1.0, &DVector::zeros(2)).is_err());
        let mut a = BaselineStats { steps: 1, ..Default::default() };
        a.absorb(&BaselineStats { steps: 2, newton_iterations: 3, ..Default::default() });
        assert_eq!(a.steps, 3);
        assert_eq!(a.newton_iterations, 3);
    }
}
