//! Waveform post-processing for the paper's figures.
//!
//! * Fig. 8(a): microgenerator output power `p(t) = V_m·I_m` during the tuning
//!   process, with RMS power before and after the retune.
//! * Fig. 8(b) / Fig. 9: supercapacitor voltage against the experimental
//!   (surrogate) measurement.
//!
//! The functions here work on the terminal trajectory recorded by the solver;
//! the net indices come from [`crate::TunableHarvester`].
//!
//! Since the session redesign these are the *post-hoc* measurement tools —
//! they need dense recorded waveforms. The streaming equivalents in
//! [`crate::probe`] compute the same figures live with O(1) memory
//! ([`crate::probe::PowerProbe`] subsumes [`power_report`] over the full
//! accepted-step grid instead of the decimated recording;
//! [`crate::probe::EnvelopeProbe`] replaces min/max scans); prefer them when
//! a run does not otherwise need its trajectories retained.

use harvsim_ode::Trajectory;

use crate::scenario::ScenarioResult;
use crate::CoreError;

/// Generator output power summary for a tuning scenario (the quantities quoted
/// alongside the paper's Fig. 8(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// RMS output power over the pre-step settling window, in microwatts.
    pub rms_before_uw: f64,
    /// RMS output power over the post-tuning window, in microwatts.
    pub rms_after_uw: f64,
    /// Minimum of the cycle-averaged power between the frequency step and the
    /// end of tuning (the dip while the generator is off-resonance), in µW.
    pub dip_uw: f64,
}

/// Deviation metrics between two waveforms (e.g. simulation vs experimental
/// surrogate for Fig. 8(b)/9, or proposed vs baseline engine for Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveformComparison {
    /// Maximum absolute deviation over the overlapping span.
    pub max_deviation: f64,
    /// RMS deviation over the overlapping span.
    pub rms_deviation: f64,
    /// Span used for the comparison, in seconds.
    pub compared_span_s: f64,
}

/// Instantaneous generator output power waveform `p(t) = V_m·I_m` in watts.
pub fn output_power_waveform(result: &ScenarioResult) -> Vec<(f64, f64)> {
    let vm = result.harvester.generator_voltage_net();
    let im = result.harvester.generator_current_net();
    result
        .terminals()
        .times()
        .iter()
        .zip(result.terminals().states())
        .map(|(&t, y)| (t, y[vm] * y[im]))
        .collect()
}

/// Supercapacitor terminal-voltage waveform `V_c(t)` in volts (the curve of
/// Fig. 8(b) and Fig. 9).
pub fn supercap_voltage_waveform(result: &ScenarioResult) -> Vec<(f64, f64)> {
    let vc = result.harvester.storage_voltage_net();
    result
        .terminals()
        .times()
        .iter()
        .zip(result.terminals().states())
        .map(|(&t, y)| (t, y[vc]))
        .collect()
}

/// RMS of the generator output power over `[t_start, t_end]`, in watts.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfiguration`] for an empty window or a window
/// outside the recorded span.
pub fn rms_power_in_window(
    result: &ScenarioResult,
    t_start: f64,
    t_end: f64,
) -> Result<f64, CoreError> {
    if !(t_end > t_start) {
        return Err(CoreError::InvalidConfiguration(format!(
            "power window must have positive length (got [{t_start}, {t_end}])"
        )));
    }
    let waveform = output_power_waveform(result);
    if waveform.is_empty() {
        return Err(CoreError::InvalidConfiguration("no samples were recorded".into()));
    }
    // Mean of p(t) over the window (power is already an instantaneous product,
    // so the figure of merit quoted in the paper is its average over whole
    // cycles; we integrate trapezoidally over the recorded grid).
    let mut integral = 0.0;
    let mut previous: Option<(f64, f64)> = None;
    for &(t, p) in waveform.iter().filter(|(t, _)| *t >= t_start && *t <= t_end) {
        if let Some((t_prev, p_prev)) = previous {
            integral += 0.5 * (p + p_prev) * (t - t_prev);
        }
        previous = Some((t, p));
    }
    let span = previous.map(|(t, _)| t).unwrap_or(t_start) - t_start;
    if span <= 0.0 {
        return Err(CoreError::InvalidConfiguration(
            "the requested window contains no recorded samples".into(),
        ));
    }
    Ok(integral / span)
}

/// Builds the [`PowerReport`] for a tuning scenario: RMS power in a window
/// before the frequency step and in a window at the end of the run (after the
/// controller has retuned), plus the dip in between.
///
/// # Errors
///
/// Propagates window errors when the run is too short to contain the windows.
pub fn power_report(result: &ScenarioResult) -> Result<PowerReport, CoreError> {
    let step_time = result.config.frequency_step_time_s;
    let end = result.terminals().last_time();
    let before_start = (step_time * 0.2).max(result.terminals().first_time());
    let rms_before = rms_power_in_window(result, before_start, step_time.max(before_start + 1e-3))?;
    let after_start = end - (end - step_time) * 0.25;
    let rms_after = rms_power_in_window(result, after_start, end)?;

    // Dip: smallest 50 ms-averaged power between the step and the end. The
    // `rms_after` window lies inside the scanned span, so it participates as a
    // candidate directly — scanning it again from a floating-point-accumulated
    // start time can include a different boundary sample and come out slightly
    // above `rms_after`, which would let `dip` exceed both reference windows.
    let window = 0.05;
    let mut dip = rms_after;
    let mut t = step_time;
    while t + window <= end + 1e-9 {
        if let Ok(avg) = rms_power_in_window(result, t, (t + window).min(end)) {
            dip = dip.min(avg);
        }
        t += window;
    }
    Ok(PowerReport {
        rms_before_uw: rms_before * 1e6,
        rms_after_uw: rms_after * 1e6,
        dip_uw: dip * 1e6,
    })
}

/// Compares one component of two trajectories over their overlapping span.
///
/// # Errors
///
/// Propagates trajectory comparison failures (empty or non-overlapping data).
pub fn compare_component(
    a: &Trajectory,
    b: &Trajectory,
    component: usize,
    samples: usize,
) -> Result<WaveformComparison, CoreError> {
    let max_deviation = a.max_deviation(b, component, samples)?;
    let rms_deviation = a.rms_deviation(b, component, samples)?;
    let span = a.last_time().min(b.last_time()) - a.first_time().max(b.first_time());
    Ok(WaveformComparison { max_deviation, rms_deviation, compared_span_s: span })
}

/// Compares the supercapacitor-voltage waveforms of two scenario runs (e.g.
/// simulation vs experimental surrogate — the Fig. 8(b)/Fig. 9 comparison).
///
/// # Errors
///
/// Propagates trajectory comparison failures.
pub fn compare_supercap_voltage(
    simulation: &ScenarioResult,
    reference: &ScenarioResult,
    samples: usize,
) -> Result<WaveformComparison, CoreError> {
    let vc_sim = simulation.harvester.storage_voltage_net();
    let vc_ref = reference.harvester.storage_voltage_net();
    if vc_sim != vc_ref {
        return Err(CoreError::InvalidConfiguration(
            "the two runs use different net layouts".into(),
        ));
    }
    compare_component(simulation.terminals(), reference.terminals(), vc_sim, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn quick_result() -> ScenarioResult {
        let mut config = ScenarioConfig::scenario1();
        config.duration_s = 0.4;
        config.frequency_step_time_s = 0.2;
        config.run().expect("short scenario run succeeds")
    }

    #[test]
    fn power_and_voltage_waveforms_are_physical() {
        let result = quick_result();
        let power = output_power_waveform(&result);
        assert_eq!(power.len(), result.terminals().len());
        // Average generated power must be positive (energy flows out of the
        // generator) and in the sub-milliwatt range for this device.
        let mean: f64 = power.iter().map(|(_, p)| *p).sum::<f64>() / power.len() as f64;
        assert!(mean > 0.0, "mean generated power {mean}");
        assert!(mean < 5e-3, "mean generated power {mean}");

        let vc = supercap_voltage_waveform(&result);
        assert_eq!(vc.len(), result.terminals().len());
        assert!(vc.iter().all(|(_, v)| *v > 1.5 && *v < 4.0), "supercap voltage stays near 2.5 V");
    }

    #[test]
    fn rms_power_window_validation() {
        let result = quick_result();
        assert!(rms_power_in_window(&result, 0.2, 0.1).is_err());
        assert!(rms_power_in_window(&result, 10.0, 11.0).is_err());
        let rms = rms_power_in_window(&result, 0.05, 0.15).unwrap();
        assert!(rms > 0.0);
    }

    #[test]
    fn power_report_contains_consistent_windows() {
        let result = quick_result();
        let report = power_report(&result).unwrap();
        assert!(report.rms_before_uw > 0.0);
        assert!(report.rms_after_uw > 0.0);
        assert!(report.dip_uw <= report.rms_before_uw.max(report.rms_after_uw) + 1e-9);
    }

    #[test]
    fn identical_runs_compare_equal() {
        let result = quick_result();
        let comparison = compare_component(result.terminals(), result.terminals(), 0, 50).unwrap();
        assert_eq!(comparison.max_deviation, 0.0);
        assert_eq!(comparison.rms_deviation, 0.0);
        assert!(comparison.compared_span_s > 0.0);
        let self_compare = compare_supercap_voltage(&result, &result, 50).unwrap();
        assert_eq!(self_compare.max_deviation, 0.0);
    }
}
