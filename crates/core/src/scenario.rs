//! The paper's evaluation scenarios (Section IV).
//!
//! * **Scenario 1** — narrow tuning: the ambient frequency steps from 70 Hz to
//!   71 Hz and the harvester retunes by 1 Hz.
//! * **Scenario 2** — wide tuning: the ambient frequency steps by 14 Hz (the
//!   maximum tuning range of the design, 70 → 84 Hz).
//!
//! A [`ScenarioConfig`] bundles the parameter set, the excitation profile, the
//! controller configuration and the analogue engine; [`ScenarioConfig::run`]
//! executes the closed-loop mixed-signal simulation and returns the recorded
//! waveforms. `run_experimental_surrogate` produces the stand-in for the
//! paper's measured curves (see DESIGN.md §3): the same scenario re-simulated
//! with parasitic losses and small parameter perturbations that the nominal
//! model does not include, mimicking the systematic differences between the
//! HDL model and the physical device that the paper itself points out.

use harvsim_blocks::{
    ControllerConfig, FrequencyProfile, HarvesterParameters, Scenario, VibrationExcitation,
};

use crate::mixed::{MixedSignalResult, MixedSignalSimulation, SimulationEngine};
use crate::solver::SolverOptions;
use crate::{CoreError, TunableHarvester};

/// A complete, runnable description of one evaluation scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which of the paper's two scenarios this is.
    pub scenario: Scenario,
    /// Total simulated time, in seconds. The paper simulates long
    /// supercapacitor-charging spans; the default here is shortened so the
    /// examples and benches run in seconds — the waveform shapes and the
    /// relative CPU-time comparison are unaffected (see DESIGN.md §4).
    pub duration_s: f64,
    /// Time at which the ambient frequency steps, in seconds.
    pub frequency_step_time_s: f64,
    /// Initial supercapacitor voltage, in volts.
    pub initial_supercap_voltage: f64,
    /// Harvester parameter set.
    pub parameters: HarvesterParameters,
    /// Controller configuration (watchdog period, thresholds, actuator rate).
    pub controller: ControllerConfig,
    /// Analogue engine used for the run.
    pub engine: SimulationEngine,
    /// Optional human-readable label. [`ScenarioConfig::sweep`] stamps each
    /// expanded point with its `param=value` path, and the batch runners
    /// carry the label into error attribution ([`CoreError::Scenario`]) so a
    /// failed grid point is identifiable without positional bookkeeping.
    pub label: Option<String>,
}

impl ScenarioConfig {
    fn base(scenario: Scenario) -> Self {
        let parameters = HarvesterParameters::practical_device();
        let controller = ControllerConfig {
            watchdog_period_s: 2.0,
            energy_threshold_v: 2.2,
            frequency_tolerance_hz: 0.25,
            measurement_duration_s: 0.2,
            tuning_rate_hz_per_s: 2.0,
            tuning_update_interval_s: 0.05,
        };
        ScenarioConfig {
            scenario,
            duration_s: 12.0,
            frequency_step_time_s: 1.0,
            initial_supercap_voltage: 2.5,
            parameters,
            controller,
            engine: SimulationEngine::StateSpace(SolverOptions::default()),
            label: None,
        }
    }

    /// The label batch errors and sweep rows identify this configuration by:
    /// the explicit [`ScenarioConfig::label`] when set, the scenario id
    /// otherwise.
    pub fn effective_label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.scenario.id().to_string())
    }

    /// Sets the label carried into sweep rows and batch error attribution.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Scenario 1 (70 → 71 Hz) with default, quick-running settings.
    pub fn scenario1() -> Self {
        Self::base(Scenario::NarrowTuning)
    }

    /// Scenario 2 (70 → 84 Hz) with default, quick-running settings. The wider
    /// retune takes the actuator 7 s at the default 2 Hz/s rate, so the default
    /// duration is longer than Scenario 1's.
    pub fn scenario2() -> Self {
        let mut config = Self::base(Scenario::WideTuning);
        config.duration_s = 16.0;
        config
    }

    /// Switches the analogue engine.
    pub fn with_engine(mut self, engine: SimulationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for inconsistent values.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.duration_s > 0.0) {
            return Err(CoreError::InvalidConfiguration("duration must be positive".into()));
        }
        if !(self.frequency_step_time_s >= 0.0 && self.frequency_step_time_s < self.duration_s) {
            return Err(CoreError::InvalidConfiguration(
                "the frequency step must occur inside the simulated span".into(),
            ));
        }
        if self.initial_supercap_voltage < 0.0 {
            return Err(CoreError::InvalidConfiguration(
                "initial supercapacitor voltage must be non-negative".into(),
            ));
        }
        self.parameters.validate()?;
        self.controller.validate()?;
        Ok(())
    }

    /// Builds the harvester model for this scenario (step excitation profile).
    ///
    /// # Errors
    ///
    /// Propagates parameter and assembly failures.
    pub fn build_harvester(&self) -> Result<TunableHarvester, CoreError> {
        let excitation = VibrationExcitation::new(
            self.parameters.acceleration_amplitude,
            FrequencyProfile::Step {
                initial_hz: self.scenario.initial_frequency_hz(),
                final_hz: self.scenario.target_frequency_hz(),
                step_time_s: self.frequency_step_time_s,
            },
        )?;
        TunableHarvester::new(self.parameters.clone(), excitation)
    }

    /// Runs the closed-loop mixed-signal simulation of the scenario.
    ///
    /// # Errors
    ///
    /// Propagates configuration, solver and kernel failures.
    pub fn run(&self) -> Result<ScenarioResult, CoreError> {
        self.validate()?;
        let mut harvester = self.build_harvester()?;
        let simulation = MixedSignalSimulation::new(self.engine)?;
        let result = simulation.run(
            &mut harvester,
            self.controller,
            self.duration_s,
            self.initial_supercap_voltage,
        )?;
        Ok(ScenarioResult { config: self.clone(), harvester, result })
    }

    /// The "experimental" surrogate configuration of this scenario: the same
    /// run with parasitic leakage across the store (a 20 kΩ sleep-mode load
    /// instead of 1 GΩ), 10 % extra mechanical damping and 3 % weaker
    /// transduction (see [`ScenarioConfig::run_experimental_surrogate`]).
    pub fn experimental_surrogate(&self) -> ScenarioConfig {
        let mut surrogate = self.clone();
        surrogate.parameters.load_sleep_ohms = 2.0e4;
        surrogate.parameters.parasitic_damping *= 1.10;
        surrogate.parameters.flux_linkage *= 0.97;
        surrogate
    }

    /// Runs the "experimental" surrogate of the scenario: the same run with
    /// parasitic leakage across the store (a 20 kΩ sleep-mode load instead of
    /// 1 GΩ), 10 % extra mechanical damping and 3 % weaker transduction —
    /// loss mechanisms the nominal HDL-style model omits, exactly the kind of
    /// discrepancy the paper attributes its simulation/measurement differences
    /// to. The surrogate acts as the measured curve in the Fig. 8(b)/Fig. 9
    /// reproductions.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`ScenarioConfig::run`].
    pub fn run_experimental_surrogate(&self) -> Result<ScenarioResult, CoreError> {
        self.experimental_surrogate().run()
    }

    /// Expands this configuration into one clone per value of `param` — the
    /// grid-building step of a parameter sweep. [`SweepGrid`] chains calls
    /// into the full cross product, and the expanded list fans through the
    /// scoped-thread [`run_batch`] (or [`crate::SpeedComparison::run_batch`])
    /// or the [`crate::explore::Explorer`] like any other batch.
    pub fn sweep(&self, param: SweepParameter, values: &[f64]) -> Vec<ScenarioConfig> {
        values
            .iter()
            .map(|&value| {
                let mut point = self.clone();
                param.apply(&mut point, value);
                // Chained sweeps build up the full `scenario+p1=v1+p2=v2`
                // path, so every grid point is identifiable in errors and
                // sweep records without positional bookkeeping.
                point.label =
                    Some(format!("{}+{}={value:e}", self.effective_label(), param.label()));
                point
            })
            .collect()
    }
}

/// A declarative cross-product sweep grid: a base configuration plus an
/// ordered list of axes, expanded row-major (the **last** axis varies
/// fastest). This replaces the hand-rolled `flat_map` chains previously
/// duplicated at every sweep call site; `repro table2 --sweep` and the
/// design-space [`crate::explore::Explorer`] both build their grids here, so
/// the `scenario+p1=v1+p2=v2` label path is pinned in exactly one place.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ScenarioConfig,
    axes: Vec<(SweepParameter, Vec<f64>)>,
}

impl SweepGrid {
    /// Starts a grid over `base` with no axes (a single point: `base` itself).
    pub fn new(base: ScenarioConfig) -> Self {
        SweepGrid { base, axes: Vec::new() }
    }

    /// Appends an axis. Axes expand in insertion order, so the axis added
    /// last is the innermost (fastest-varying) one.
    pub fn axis(mut self, param: SweepParameter, values: &[f64]) -> Self {
        self.axes.push((param, values.to_vec()));
        self
    }

    /// The base configuration every point is derived from.
    pub fn base(&self) -> &ScenarioConfig {
        &self.base
    }

    /// The axes in expansion order (last = innermost).
    pub fn axes(&self) -> &[(SweepParameter, Vec<f64>)] {
        &self.axes
    }

    /// Number of points in the full cross product (`1` for an axis-free
    /// grid, `0` if any axis is empty).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, values)| values.len()).product()
    }

    /// Whether the cross product is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the full cross product, row-major with the last axis varying
    /// fastest. Every point's label is its `scenario+p1=v1+p2=v2` path,
    /// produced by chaining [`ScenarioConfig::sweep`] per axis — the same
    /// labels a hand-rolled `flat_map` chain over `sweep` produces.
    pub fn expand(&self) -> Vec<ScenarioConfig> {
        let mut points = vec![self.base.clone()];
        for (param, values) in &self.axes {
            points = points.iter().flat_map(|point| point.sweep(*param, values)).collect();
        }
        points
    }
}

/// Scenario parameter swept by [`ScenarioConfig::sweep`] — the design axes
/// the roadmap's many-scenario studies move along: load/excitation/pre-charge
/// plus the topology and controller axes the design-space explorer
/// ([`crate::explore`]) cross-products over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepParameter {
    /// Sleep-mode equivalent load resistance, in ohms (the leakage axis: 1 GΩ
    /// nominal, 20 kΩ for the experimental surrogate).
    SleepLoadOhms,
    /// Ambient vibration acceleration amplitude, in m/s² (the excitation
    /// axis).
    AccelerationAmplitude,
    /// Initial supercapacitor pre-charge, in volts (the stored-energy axis).
    InitialSupercapVoltage,
    /// Dickson multiplier stage count (the topology axis). Values are rounded
    /// to the nearest integer; non-positive values round to zero and are then
    /// rejected by [`ScenarioConfig::validate`], surfacing as an attributed
    /// per-point failure rather than a panic.
    MultiplierStages,
    /// Supercapacitor storage sizing, as a multiplicative scale applied to
    /// all four branch capacitances (`C_i0`, `C_i1`, `C_d`, `C_l`) of the
    /// configuration being expanded — `1.0` keeps the base sizing, `250`
    /// turns the practical 2.2 mF device into the paper-scale 0.55 F one.
    StorageScale,
    /// Number of segments in the diode piecewise-linear lookup tables (the
    /// accuracy/speed granularity axis). Rounded like
    /// [`SweepParameter::MultiplierStages`]; values below 2 fail validation
    /// per point.
    PwlSegments,
    /// Digital duty-cycle period: the microcontroller's watchdog wake-up
    /// interval, in seconds (applied to both the controller configuration and
    /// the parameter set so the two stay consistent).
    WatchdogPeriod,
}

impl SweepParameter {
    /// Short label used in sweep row names (`load`, `acc`, `v0`, `stages`,
    /// `store`, `pwl`, `wdt`).
    pub fn label(&self) -> &'static str {
        match self {
            SweepParameter::SleepLoadOhms => "load",
            SweepParameter::AccelerationAmplitude => "acc",
            SweepParameter::InitialSupercapVoltage => "v0",
            SweepParameter::MultiplierStages => "stages",
            SweepParameter::StorageScale => "store",
            SweepParameter::PwlSegments => "pwl",
            SweepParameter::WatchdogPeriod => "wdt",
        }
    }

    /// The inverse of [`SweepParameter::label`], for CLI axis flags.
    pub fn from_label(label: &str) -> Option<SweepParameter> {
        match label {
            "load" => Some(SweepParameter::SleepLoadOhms),
            "acc" => Some(SweepParameter::AccelerationAmplitude),
            "v0" => Some(SweepParameter::InitialSupercapVoltage),
            "stages" => Some(SweepParameter::MultiplierStages),
            "store" => Some(SweepParameter::StorageScale),
            "pwl" => Some(SweepParameter::PwlSegments),
            "wdt" => Some(SweepParameter::WatchdogPeriod),
            _ => None,
        }
    }

    /// Writes `value` into the field(s) this axis controls. Integer-valued
    /// axes round; out-of-range results are left for
    /// [`ScenarioConfig::validate`] to reject per point, so a bad axis value
    /// becomes an attributed failure row instead of aborting the grid.
    pub fn apply(&self, config: &mut ScenarioConfig, value: f64) {
        match self {
            SweepParameter::SleepLoadOhms => config.parameters.load_sleep_ohms = value,
            SweepParameter::AccelerationAmplitude => {
                config.parameters.acceleration_amplitude = value;
            }
            SweepParameter::InitialSupercapVoltage => config.initial_supercap_voltage = value,
            SweepParameter::MultiplierStages => {
                config.parameters.multiplier_stages = value.round().max(0.0) as usize;
            }
            SweepParameter::StorageScale => {
                config.parameters.supercap_ci0 *= value;
                config.parameters.supercap_ci1 *= value;
                config.parameters.supercap_cd *= value;
                config.parameters.supercap_cl *= value;
            }
            SweepParameter::PwlSegments => {
                config.parameters.diode_table_segments = value.round().max(0.0) as usize;
            }
            SweepParameter::WatchdogPeriod => {
                config.controller.watchdog_period_s = value;
                config.parameters.watchdog_period_s = value;
            }
        }
    }
}

/// Runs several scenario configurations concurrently on scoped worker
/// threads (at most `available_parallelism()` in flight) and returns their
/// results in input order — the first step toward the many-scenario sweeps
/// of the roadmap. Every run owns its harvester, kernel and solver
/// workspaces, so the workers share nothing and the per-run waveforms and
/// statistics are bit-identical to sequential [`ScenarioConfig::run`] calls.
///
/// On a single-hardware-thread host (or for a single configuration) the runs
/// execute sequentially instead: oversubscribing one core would interleave
/// the workers and corrupt the wall-clock CPU timings the Table II records
/// are built from, without finishing any sooner. That fallback is no longer
/// silent: every successful run's [`crate::SolverStats::threads_used`] is
/// stamped with the worker count actually used (`1` for the sequential
/// fallback), so a single-core CI timing is attributable from the records
/// alone.
///
/// Failures come back labelled: each error slot is a
/// [`CoreError::Scenario`] carrying the originating configuration's
/// [`ScenarioConfig::effective_label`] (the scenario id, or the sweep
/// point's `scenario+param=value` path), so a failed grid point is
/// identifiable from the error alone.
pub fn run_batch(configs: &[ScenarioConfig]) -> Vec<Result<ScenarioResult, CoreError>> {
    let (mut results, threads_used) = parallel_map(configs, |config| {
        config.run().map_err(|err| err.for_scenario(config.effective_label()))
    });
    for result in results.iter_mut().flatten() {
        // Only the engine that actually ran gets the fan-out stamped —
        // writing it into a zeroed stats block would misattribute the
        // batch's worker count to an engine that did no work.
        let stats = &mut result.result.engine_stats.state_space;
        if stats.steps > 0 {
            stats.threads_used = threads_used;
        }
    }
    results
}

/// Shared batch plumbing for [`run_batch`],
/// [`crate::SpeedComparison::run_batch`] and external sweep drivers (the
/// `repro --sweep` grid fans streaming sessions through it): applies `work`
/// to every item, running at most `available_parallelism()` scoped worker
/// threads at a time, and reports how many workers actually ran concurrently
/// (`1` = sequential fallback) so the callers can surface it instead of
/// hiding it.
/// The chunking matters for more than throughput — the per-engine CPU times
/// in the comparison reports are `Instant`-based wall-clock measurements, so
/// oversubscribing the cores (16 sweeps on a 2-core runner) would fold
/// scheduler wait into the very numbers the speed-up gates check. On a
/// single-hardware-thread host (or a single item) everything runs
/// sequentially for the same reason.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    work: impl Fn(&T) -> Result<R, CoreError> + Sync,
) -> (Vec<Result<R, CoreError>>, usize) {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if workers < 2 || items.len() < 2 {
        return (items.iter().map(work).collect(), 1);
    }
    let mut results = Vec::with_capacity(items.len());
    for chunk in items.chunks(workers) {
        results.extend(std::thread::scope(|scope| {
            let handles: Vec<_> = chunk.iter().map(|item| scope.spawn(|| work(item))).collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| {
                        Err(CoreError::InvalidConfiguration(
                            "batch worker thread panicked".to_string(),
                        ))
                    })
                })
                .collect::<Vec<_>>()
        }));
    }
    (results, workers.min(items.len()))
}

/// The outcome of a scenario run: the configuration, the (possibly retuned)
/// harvester and the recorded waveforms.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The configuration that produced this result.
    pub config: ScenarioConfig,
    /// The harvester in its final state (retuned resonance, final load mode).
    pub harvester: TunableHarvester,
    /// The recorded waveforms and statistics.
    pub result: MixedSignalResult,
}

impl ScenarioResult {
    /// Convenience accessor for the recorded state trajectory.
    pub fn states(&self) -> &harvsim_ode::Trajectory {
        &self.result.states
    }

    /// Convenience accessor for the recorded terminal trajectory.
    pub fn terminals(&self) -> &harvsim_ode::Trajectory {
        &self.result.terminals
    }
}

impl std::ops::Deref for ScenarioResult {
    type Target = MixedSignalResult;
    fn deref(&self) -> &MixedSignalResult {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configurations_are_valid_and_match_the_paper() {
        let s1 = ScenarioConfig::scenario1();
        assert!(s1.validate().is_ok());
        assert_eq!(s1.scenario.frequency_shift_hz(), 1.0);
        let s2 = ScenarioConfig::scenario2();
        assert!(s2.validate().is_ok());
        assert_eq!(s2.scenario.frequency_shift_hz(), 14.0);
        assert!(s2.duration_s > s1.duration_s);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut config = ScenarioConfig::scenario1();
        config.duration_s = 0.0;
        assert!(config.validate().is_err());
        let mut config = ScenarioConfig::scenario1();
        config.frequency_step_time_s = 100.0;
        assert!(config.validate().is_err());
        let mut config = ScenarioConfig::scenario1();
        config.initial_supercap_voltage = -1.0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn build_harvester_uses_the_step_profile() {
        let config = ScenarioConfig::scenario2();
        let harvester = config.build_harvester().unwrap();
        assert_eq!(harvester.ambient_frequency_hz(0.0), 70.0);
        assert_eq!(harvester.ambient_frequency_hz(config.frequency_step_time_s + 1.0), 84.0);
    }

    /// The batch runner must agree bit for bit with sequential runs: a worker
    /// thread changes where a run executes, never what it computes.
    #[test]
    fn batch_runs_match_sequential_runs_bit_for_bit() {
        let mut narrow = ScenarioConfig::scenario1();
        narrow.duration_s = 0.25;
        narrow.frequency_step_time_s = 0.1;
        let surrogate = narrow.experimental_surrogate();
        let configs = [narrow.clone(), surrogate.clone()];

        let batched = run_batch(&configs);
        assert_eq!(batched.len(), 2);
        let sequential = [narrow.run().unwrap(), surrogate.run().unwrap()];
        for (batch, reference) in batched.into_iter().zip(sequential) {
            let batch = batch.expect("batch run succeeds");
            assert_eq!(batch.final_state, reference.final_state);
            assert_eq!(batch.states().len(), reference.states().len());
            assert_eq!(
                batch.result.engine_stats.state_space.steps,
                reference.result.engine_stats.state_space.steps
            );
            for (sample, expected) in
                batch.states().states().iter().zip(reference.states().states())
            {
                assert_eq!(sample, expected);
            }
        }
        // Empty and singleton batches behave like plain iteration.
        assert!(run_batch(&[]).is_empty());
        assert_eq!(run_batch(&configs[..1]).len(), 1);
    }

    /// Sweep expansion produces one configuration per value with only the
    /// swept parameter changed, and chained sweeps build the cross product.
    #[test]
    fn sweep_expands_the_parameter_grid() {
        let base = ScenarioConfig::scenario1();
        let loads = base.sweep(SweepParameter::SleepLoadOhms, &[1.0e9, 2.0e4]);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].parameters.load_sleep_ohms, 1.0e9);
        assert_eq!(loads[1].parameters.load_sleep_ohms, 2.0e4);
        assert_eq!(
            loads[1].parameters.acceleration_amplitude,
            base.parameters.acceleration_amplitude
        );
        assert_eq!(loads[1].duration_s, base.duration_s);

        let grid: Vec<ScenarioConfig> = loads
            .iter()
            .flat_map(|point| point.sweep(SweepParameter::AccelerationAmplitude, &[0.4, 0.6, 0.8]))
            .collect();
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[5].parameters.load_sleep_ohms, 2.0e4);
        assert_eq!(grid[5].parameters.acceleration_amplitude, 0.8);

        let precharges = base.sweep(SweepParameter::InitialSupercapVoltage, &[2.0, 2.6]);
        assert_eq!(precharges[0].initial_supercap_voltage, 2.0);
        assert_eq!(precharges[1].initial_supercap_voltage, 2.6);
        for point in &grid {
            assert!(point.validate().is_ok());
        }
        assert_eq!(SweepParameter::SleepLoadOhms.label(), "load");
        assert_eq!(SweepParameter::AccelerationAmplitude.label(), "acc");
        assert_eq!(SweepParameter::InitialSupercapVoltage.label(), "v0");
    }

    /// The `SweepGrid` builder must reproduce the hand-rolled `flat_map`
    /// cross product exactly, including the pinned `scenario+p1=v1+p2=v2`
    /// label path (regression pin for the sweep-label wire format: stored
    /// explore rows and error attributions carry these strings).
    #[test]
    fn sweep_grid_builder_pins_labels_and_cross_product() {
        let base = ScenarioConfig::scenario1().with_label("sweep");
        let grid = SweepGrid::new(base.clone())
            .axis(SweepParameter::SleepLoadOhms, &[1.0e9, 2.0e4])
            .axis(SweepParameter::AccelerationAmplitude, &[0.4, 0.6, 0.8]);
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        assert_eq!(grid.axes().len(), 2);
        let points = grid.expand();
        assert_eq!(points.len(), 6);

        // Bit-identical to the chained flat_map expansion it replaces.
        let reference: Vec<ScenarioConfig> = base
            .sweep(SweepParameter::SleepLoadOhms, &[1.0e9, 2.0e4])
            .iter()
            .flat_map(|point| point.sweep(SweepParameter::AccelerationAmplitude, &[0.4, 0.6, 0.8]))
            .collect();
        for (point, expected) in points.iter().zip(&reference) {
            assert_eq!(point.label, expected.label);
            assert_eq!(point.parameters.load_sleep_ohms, expected.parameters.load_sleep_ohms);
            assert_eq!(
                point.parameters.acceleration_amplitude,
                expected.parameters.acceleration_amplitude
            );
        }
        // The pinned label format, spelled out for the innermost-fastest
        // row-major order: last axis varies fastest.
        assert_eq!(points[0].label.as_deref(), Some("sweep+load=1e9+acc=4e-1"));
        assert_eq!(points[1].label.as_deref(), Some("sweep+load=1e9+acc=6e-1"));
        assert_eq!(points[5].label.as_deref(), Some("sweep+load=2e4+acc=8e-1"));

        // An axis-free grid is the base point itself; an empty axis empties
        // the product.
        assert_eq!(SweepGrid::new(base.clone()).expand().len(), 1);
        let empty = SweepGrid::new(base).axis(SweepParameter::PwlSegments, &[]);
        assert!(empty.is_empty());
        assert!(empty.expand().is_empty());
    }

    /// The explorer's new design axes write the fields they advertise and
    /// round-trip through `from_label`.
    #[test]
    fn extended_sweep_axes_apply_their_fields() {
        let base = ScenarioConfig::scenario1();
        let stages = base.sweep(SweepParameter::MultiplierStages, &[3.0]);
        assert_eq!(stages[0].parameters.multiplier_stages, 3);
        assert_eq!(stages[0].label.as_deref(), Some("scenario1+stages=3e0"));

        let scaled = base.sweep(SweepParameter::StorageScale, &[250.0]);
        assert!((scaled[0].parameters.supercap_ci0 - 0.55).abs() < 1e-12);
        assert!((scaled[0].parameters.supercap_cd - 0.125).abs() < 1e-12);

        let pwl = base.sweep(SweepParameter::PwlSegments, &[300.0]);
        assert_eq!(pwl[0].parameters.diode_table_segments, 300);

        let wdt = base.sweep(SweepParameter::WatchdogPeriod, &[0.75]);
        assert_eq!(wdt[0].controller.watchdog_period_s, 0.75);
        assert_eq!(wdt[0].parameters.watchdog_period_s, 0.75);

        // A non-positive stage count survives `apply` (rounds to zero) and is
        // rejected by validation — the attributed-failure path of the grid.
        let bad = base.sweep(SweepParameter::MultiplierStages, &[-1.0]);
        assert_eq!(bad[0].parameters.multiplier_stages, 0);
        assert!(bad[0].validate().is_err());

        for param in [
            SweepParameter::SleepLoadOhms,
            SweepParameter::AccelerationAmplitude,
            SweepParameter::InitialSupercapVoltage,
            SweepParameter::MultiplierStages,
            SweepParameter::StorageScale,
            SweepParameter::PwlSegments,
            SweepParameter::WatchdogPeriod,
        ] {
            assert_eq!(SweepParameter::from_label(param.label()), Some(param));
        }
        assert_eq!(SweepParameter::from_label("nonsense"), None);
    }

    /// The batch runner records how many worker threads actually ran, so a
    /// sequential fallback (single-core host, singleton batch) is visible in
    /// the statistics instead of silently matching the parallel path.
    #[test]
    fn batch_runs_record_the_worker_fanout() {
        let mut config = ScenarioConfig::scenario1();
        config.duration_s = 0.2;
        config.frequency_step_time_s = 0.05;
        let pair = [config.clone(), config.experimental_surrogate()];
        let results = run_batch(&pair);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let expected = if cores < 2 { 1 } else { 2 };
        for result in results {
            let run = result.expect("batch run succeeds");
            assert_eq!(run.result.engine_stats.state_space.threads_used, expected);
        }
        // A singleton batch always reports the sequential fallback.
        let single = run_batch(&pair[..1]);
        assert_eq!(
            single[0].as_ref().expect("runs").result.engine_stats.state_space.threads_used,
            1
        );
    }

    /// Errors surface per slot instead of poisoning the whole batch.
    #[test]
    fn batch_reports_per_scenario_errors() {
        let good = {
            let mut config = ScenarioConfig::scenario1();
            config.duration_s = 0.1;
            config.frequency_step_time_s = 0.05;
            config
        };
        let mut bad = good.clone();
        bad.duration_s = -1.0;
        let results = run_batch(&[bad, good]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn short_scenario_run_produces_waveforms() {
        let mut config = ScenarioConfig::scenario1();
        config.duration_s = 0.3;
        config.frequency_step_time_s = 0.1;
        let result = config.run().unwrap();
        assert!(result.states().len() > 10);
        assert!((result.states().last_time() - 0.3).abs() < 1e-6);
        assert!(result.final_state.is_finite());
        // The surrogate drains faster (leakage) but still runs.
        let surrogate = config.run_experimental_surrogate().unwrap();
        assert!(surrogate.states().len() > 10);
        assert_eq!(
            ScenarioConfig::scenario1().with_engine(config.engine).engine.name(),
            "linearised-state-space"
        );
    }
}
