//! Deterministic, seeded fault injection for the durability layer.
//!
//! A [`FaultPlan`] is a shared, thread-safe schedule of faults consulted by
//! the [`crate::service::SessionService`] and the [`crate::store::SessionStore`]
//! at fixed hook points ([`FaultSite`]): checkpoint encode/decode, store
//! write/read/rename, and scheduling-slice boundaries. Each site keeps an
//! atomic call ordinal; whether call `n` at site `s` faults — and which
//! [`Fault`] it draws — is a pure function of `(seed, s, n)`, so a plan is
//! reproducible from its seed alone. (Under a multi-worker scheduler the
//! *assignment* of ordinals to jobs follows thread interleaving; the fault
//! sequence per site does not.)
//!
//! Every site has a bounded injection budget, so a torture run provably
//! drains its faults: once the budgets are exhausted the system must settle
//! into a clean, fully-recovered state — the property
//! `tests/service_recovery.rs` pins. This module is a first-class public
//! API, not test scaffolding: chaos drills against a deployed service use
//! the same hooks.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The hook points at which a [`FaultPlan`] is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Immediately before a session checkpoint is encoded (a stand-in for a
    /// panicking probe or codec defect). Supports [`Fault::Panic`].
    CheckpointEncode,
    /// Immediately before a frozen session is decoded back into a live one.
    /// Supports [`Fault::Panic`].
    CheckpointDecode,
    /// Each attempt to write a frame (or manifest) file in the store.
    /// Supports [`Fault::TornWrite`], [`Fault::BitFlip`], [`Fault::IoError`].
    StoreWrite,
    /// Each frame read from the store. Supports [`Fault::BitFlip`] (applied
    /// to the bytes in flight, modelling media corruption) and
    /// [`Fault::IoError`].
    StoreRead,
    /// Each temp-file → final-name rename in the store. Supports
    /// [`Fault::IoError`].
    StoreRename,
    /// Each scheduling-slice boundary in the service. Supports
    /// [`Fault::Panic`] (a runaway/defective session) and — on its own
    /// kill schedule — [`Fault::KillService`].
    SliceBoundary,
    /// Each command frame read from a protocol connection. Supports
    /// [`Fault::TornWrite`] (frame truncated mid-read, as a dying client
    /// leaves it), [`Fault::BitFlip`] (garbage bytes in flight),
    /// [`Fault::IoError`] (mid-command disconnect) and [`Fault::Stall`]
    /// (a slow/stalled client).
    WireRead,
    /// Each response frame written to a protocol connection. Supports
    /// [`Fault::IoError`] (the reply is dropped — the client never sees it,
    /// exercising idempotent retry) and [`Fault::Stall`].
    WireWrite,
}

/// Number of distinct [`FaultSite`] values (array-index domain).
const SITE_COUNT: usize = 8;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::CheckpointEncode => 0,
            FaultSite::CheckpointDecode => 1,
            FaultSite::StoreWrite => 2,
            FaultSite::StoreRead => 3,
            FaultSite::StoreRename => 4,
            FaultSite::SliceBoundary => 5,
            FaultSite::WireRead => 6,
            FaultSite::WireWrite => 7,
        }
    }

    /// Every site, in index order (the iteration domain of
    /// [`FaultPlan::drained`] and the bookkeeping tests).
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::CheckpointEncode,
        FaultSite::CheckpointDecode,
        FaultSite::StoreWrite,
        FaultSite::StoreRead,
        FaultSite::StoreRename,
        FaultSite::SliceBoundary,
        FaultSite::WireRead,
        FaultSite::WireWrite,
    ];
}

/// A concrete fault drawn from the plan at one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write stops after `keep` bytes and the torn temp file is left
    /// behind — the on-disk trace of a crash mid-write.
    TornWrite {
        /// Bytes actually written before the simulated crash.
        keep: usize,
    },
    /// One bit at `offset` (mod the buffer length) is flipped in the bytes
    /// in flight — silent media corruption the checksums must catch.
    BitFlip {
        /// Byte offset of the flip, reduced modulo the buffer length.
        offset: usize,
    },
    /// The call site must panic (the supervision layer is expected to
    /// contain it).
    Panic,
    /// The operation fails with a synthetic I/O error (the retry/degradation
    /// machinery is expected to absorb it).
    IoError,
    /// The whole service "crashes" at this slice boundary: workers stop
    /// dead, in-flight sessions are dropped, unresolved jobs report
    /// interrupted. Only the on-disk store survives.
    KillService,
    /// The call site sleeps for `millis` before proceeding — a slow or
    /// stalled peer. The operation itself then succeeds; what the stall
    /// tests is the *other* side's deadline/timeout machinery.
    Stall {
        /// Milliseconds the site sleeps (bounded small so tests stay fast).
        millis: u64,
    },
}

/// Which fault kinds a site may draw (builder-facing tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// [`Fault::TornWrite`].
    Torn,
    /// [`Fault::BitFlip`].
    Flip,
    /// [`Fault::Panic`].
    Panic,
    /// [`Fault::IoError`].
    Io,
    /// [`Fault::Stall`].
    Stall,
}

/// Per-site schedule: fire every `period`-th call, at most `budget` times,
/// drawing among `kinds`.
#[derive(Debug, Clone)]
struct SiteConfig {
    period: u64,
    budget: u64,
    kinds: Vec<FaultKind>,
}

/// A deterministic, seeded fault-injection schedule. Construct with
/// [`FaultPlan::new`], arm sites with [`FaultPlan::with_site`] /
/// [`FaultPlan::with_kills`], share via `Arc`, and hand it to
/// [`crate::service::ServiceOptions::fault_plan`] and
/// [`crate::store::SessionStore::set_fault_plan`].
pub struct FaultPlan {
    seed: u64,
    sites: [Option<SiteConfig>; SITE_COUNT],
    /// Kill-service schedule over the slice-boundary ordinal: fire whenever
    /// the ordinal is a positive multiple of `kill_every`, at most
    /// `max_kills` times.
    kill_every: u64,
    max_kills: u64,
    calls: [AtomicU64; SITE_COUNT],
    injected: [AtomicU64; SITE_COUNT],
    kills: AtomicU64,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("kill_every", &self.kill_every)
            .field("max_kills", &self.max_kills)
            .field("kills", &self.kills.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// SplitMix64 — the deterministic mixer behind every fault decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and no faults armed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Default::default(),
            kill_every: 0,
            max_kills: 0,
            calls: Default::default(),
            injected: Default::default(),
            kills: AtomicU64::new(0),
        }
    }

    /// Arms `site`: every `period`-th call faults (at most `budget` times),
    /// drawing uniformly among the site's default fault kinds. A `period`
    /// of 0 disarms the site.
    pub fn with_site(self, site: FaultSite, period: u64, budget: u64) -> Self {
        let kinds = match site {
            FaultSite::CheckpointEncode | FaultSite::CheckpointDecode => vec![FaultKind::Panic],
            FaultSite::StoreWrite => vec![FaultKind::Torn, FaultKind::Flip, FaultKind::Io],
            FaultSite::StoreRead => vec![FaultKind::Flip, FaultKind::Io],
            FaultSite::StoreRename => vec![FaultKind::Io],
            FaultSite::SliceBoundary => vec![FaultKind::Panic],
            FaultSite::WireRead => {
                vec![FaultKind::Torn, FaultKind::Flip, FaultKind::Io, FaultKind::Stall]
            }
            FaultSite::WireWrite => vec![FaultKind::Io, FaultKind::Stall],
        };
        self.with_site_kinds(site, period, budget, &kinds)
    }

    /// Like [`FaultPlan::with_site`] but drawing only among `kinds`
    /// (e.g. I/O errors alone, to drive the degradation path without
    /// corruption). Kinds a site cannot express are ignored; if none
    /// remain, the site stays disarmed.
    pub fn with_site_kinds(
        mut self,
        site: FaultSite,
        period: u64,
        budget: u64,
        kinds: &[FaultKind],
    ) -> Self {
        let kinds: Vec<FaultKind> = kinds.to_vec();
        self.sites[site.index()] = (period > 0 && budget > 0 && !kinds.is_empty())
            .then_some(SiteConfig { period, budget, kinds });
        self
    }

    /// Arms the service-kill schedule: the service "crashes" at every
    /// `kill_every`-th slice boundary, at most `max_kills` times across the
    /// plan's lifetime (spanning service restarts that share the plan).
    pub fn with_kills(mut self, kill_every: u64, max_kills: u64) -> Self {
        self.kill_every = kill_every;
        self.max_kills = max_kills;
        self
    }

    /// Consults the plan at `site`. `len` is the length of the byte buffer
    /// in flight (0 when there is none); torn-write/bit-flip offsets are
    /// derived from it. Returns the fault to inject, if any.
    pub fn decide(&self, site: FaultSite, len: usize) -> Option<Fault> {
        let index = site.index();
        let ordinal = self.calls[index].fetch_add(1, Ordering::Relaxed);
        // The kill schedule rides the slice-boundary ordinal but has its own
        // budget, independent of the site's panic schedule.
        if site == FaultSite::SliceBoundary
            && self.kill_every > 0
            && ordinal > 0
            && ordinal.is_multiple_of(self.kill_every)
            && self.kills.fetch_add(1, Ordering::Relaxed) < self.max_kills
        {
            return Some(Fault::KillService);
        }
        let config = self.sites[index].as_ref()?;
        if !(ordinal + 1).is_multiple_of(config.period) {
            return None;
        }
        if self.injected[index].fetch_add(1, Ordering::Relaxed) >= config.budget {
            return None;
        }
        let h = mix(self.seed ^ mix((index as u64) << 32 ^ ordinal));
        let kind = config.kinds[(h as usize) % config.kinds.len()];
        Some(match kind {
            FaultKind::Torn => Fault::TornWrite { keep: (h >> 8) as usize % len.max(1) },
            FaultKind::Flip => Fault::BitFlip { offset: (h >> 8) as usize % len.max(1) },
            FaultKind::Panic => Fault::Panic,
            FaultKind::Io => Fault::IoError,
            FaultKind::Stall => Fault::Stall { millis: 1 + (h >> 8) % 15 },
        })
    }

    /// Calls observed at `site` so far.
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.calls[site.index()].load(Ordering::Relaxed)
    }

    /// Faults actually injected at `site` so far (kills excluded — see
    /// [`FaultPlan::kills`]). May transiently overcount by concurrent racers
    /// only in the call counter, never in injections beyond the budget.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
            .load(Ordering::Relaxed)
            .min(self.sites[site.index()].as_ref().map(|config| config.budget).unwrap_or(0))
    }

    /// Service kills injected so far.
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed).min(self.max_kills)
    }

    /// The panic message every injected [`Fault::Panic`] uses — test panic
    /// hooks filter on it to keep torture-run output readable.
    pub const PANIC_MESSAGE: &'static str = "injected fault: panic";

    /// Proves every configured fault budget was actually *spent*: `Ok(())`
    /// when each armed site injected its full budget and the kill schedule
    /// (if armed) fired `max_kills` times, otherwise `Err` naming every
    /// unspent budget. Torture tests end with
    /// `plan.drained().expect("budgets spent")` so a schedule that silently
    /// stopped firing (periods never hit, sites never reached) fails loudly
    /// instead of vacuously passing.
    pub fn drained(&self) -> Result<(), String> {
        let mut unspent = Vec::new();
        for site in FaultSite::ALL {
            if let Some(config) = &self.sites[site.index()] {
                let injected = self.injected(site);
                if injected < config.budget {
                    unspent.push(format!("{site:?}: {injected}/{} injected", config.budget));
                }
            }
        }
        if self.max_kills > 0 && self.kills() < self.max_kills {
            unspent.push(format!("KillService: {}/{} fired", self.kills(), self.max_kills));
        }
        if unspent.is_empty() {
            Ok(())
        } else {
            Err(format!("fault budgets not drained: {}", unspent.join(", ")))
        }
    }
}

/// Sleeps out a [`Fault::Stall`] (other faults are a no-op). Returns whether
/// the call actually stalled.
pub fn apply_stall(fault: Fault) -> bool {
    if let Fault::Stall { millis } = fault {
        std::thread::sleep(std::time::Duration::from_millis(millis));
        return true;
    }
    false
}

/// Flips one bit of `bytes` in place per `fault` if it is a
/// [`Fault::BitFlip`]; other faults (and empty buffers) leave the bytes
/// untouched. Returns whether a flip happened.
pub fn apply_bit_flip(fault: Fault, bytes: &mut [u8]) -> bool {
    if let Fault::BitFlip { offset } = fault {
        if !bytes.is_empty() {
            let at = offset % bytes.len();
            bytes[at] ^= 1 << (offset % 8);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_faults() {
        let plan = FaultPlan::new(42);
        for _ in 0..1000 {
            assert_eq!(plan.decide(FaultSite::StoreWrite, 100), None);
            assert_eq!(plan.decide(FaultSite::SliceBoundary, 0), None);
        }
        assert_eq!(plan.kills(), 0);
        assert_eq!(plan.calls(FaultSite::StoreWrite), 1000);
    }

    #[test]
    fn budgets_bound_injections_and_schedule_is_deterministic() {
        let run = || {
            let plan = FaultPlan::new(7).with_site(FaultSite::StoreWrite, 5, 3);
            let mut seen = Vec::new();
            for n in 0..100 {
                if let Some(fault) = plan.decide(FaultSite::StoreWrite, 64) {
                    seen.push((n, fault));
                }
            }
            seen
        };
        let first = run();
        assert_eq!(first.len(), 3, "budget of 3 must bound injections: {first:?}");
        assert_eq!(first, run(), "same seed, same schedule");
        // Fires on every period-th call until the budget drains.
        assert_eq!(first.iter().map(|(n, _)| *n).collect::<Vec<_>>(), vec![4, 9, 14]);
    }

    #[test]
    fn kill_schedule_is_budgeted_and_rides_the_slice_ordinal() {
        let plan = FaultPlan::new(1).with_kills(10, 2);
        let mut kills = Vec::new();
        for n in 0..100 {
            if plan.decide(FaultSite::SliceBoundary, 0) == Some(Fault::KillService) {
                kills.push(n);
            }
        }
        assert_eq!(kills, vec![10, 20]);
        assert_eq!(plan.kills(), 2);
    }

    #[test]
    fn drained_reports_unspent_budgets_by_site() {
        let plan = FaultPlan::new(5)
            .with_site(FaultSite::WireRead, 2, 3)
            .with_site_kinds(FaultSite::WireWrite, 3, 2, &[FaultKind::Io])
            .with_kills(4, 1);
        let err = plan.drained().unwrap_err();
        assert!(err.contains("WireRead: 0/3"), "{err}");
        assert!(err.contains("WireWrite: 0/2"), "{err}");
        assert!(err.contains("KillService: 0/1"), "{err}");
        // Spend everything: wire reads fire on every 2nd call, wire writes on
        // every 3rd, the kill on the 4th slice boundary.
        for _ in 0..8 {
            plan.decide(FaultSite::WireRead, 32);
            plan.decide(FaultSite::WireWrite, 32);
            plan.decide(FaultSite::SliceBoundary, 0);
        }
        plan.drained().expect("all budgets spent");
    }

    #[test]
    fn wire_sites_draw_their_own_kinds_and_stalls_sleep() {
        let plan = FaultPlan::new(21).with_site_kinds(
            FaultSite::WireRead,
            1,
            u64::MAX,
            &[FaultKind::Stall],
        );
        match plan.decide(FaultSite::WireRead, 16) {
            Some(stall @ Fault::Stall { millis }) => {
                assert!((1..=15).contains(&millis), "stalls stay short: {millis} ms");
                let before = std::time::Instant::now();
                assert!(apply_stall(stall));
                assert!(before.elapsed() >= std::time::Duration::from_millis(millis));
            }
            other => panic!("expected a stall, got {other:?}"),
        }
        assert!(!apply_stall(Fault::IoError));
        // Distinct wire sites keep distinct ordinals.
        assert_eq!(plan.calls(FaultSite::WireRead), 1);
        assert_eq!(plan.calls(FaultSite::WireWrite), 0);
    }

    #[test]
    fn kind_restriction_and_bit_flip_application() {
        let plan =
            FaultPlan::new(3).with_site_kinds(FaultSite::StoreWrite, 1, 1000, &[FaultKind::Io]);
        for _ in 0..50 {
            assert_eq!(plan.decide(FaultSite::StoreWrite, 16), Some(Fault::IoError));
        }
        let mut bytes = vec![0u8; 8];
        assert!(apply_bit_flip(Fault::BitFlip { offset: 13 }, &mut bytes));
        assert_eq!(bytes.iter().filter(|&&b| b != 0).count(), 1);
        assert!(!apply_bit_flip(Fault::IoError, &mut bytes.clone()));
        assert!(!apply_bit_flip(Fault::BitFlip { offset: 0 }, &mut []));
    }
}
