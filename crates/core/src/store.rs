//! Crash-safe on-disk session store: durable checkpoint frames keyed by
//! session id, surviving process kills, torn writes and media corruption.
//!
//! # Atomicity & fsync policy
//!
//! Every file the store writes — checkpoint frames and the manifest alike —
//! goes through the same discipline: write to a `*.tmp` sibling, `fsync` the
//! file, `rename` over the final name, `fsync` the directory. A crash
//! therefore leaves either the old content, the new content, or a stale
//! `*.tmp` (swept at the next [`SessionStore::open`]); a final-name file is
//! never half-written by the store itself.
//!
//! # Manifest
//!
//! `MANIFEST` is a sealed frame (same magic/version/checksum machinery as
//! session checkpoints, with its own payload kind) recording, per session id:
//! lifecycle state (*active* / *done*), the frame's byte length, and the
//! frame's whole-file FNV-1a checksum. The manifest record is authoritative:
//! at recovery, a frame that disagrees with its record — wrong length, wrong
//! checksum, missing, or present without a record — is **discarded with a
//! typed reason and quarantined to `*.ckpt.corrupt`**, never resurrected; the
//! job simply restarts fresh, which is always correct (just slower). This is
//! what makes a cross-id frame swap, a torn rename window, or silent media
//! corruption safe. Only when the manifest itself is missing or corrupt does
//! the store rebuild it by adopting frames that pass their own internal
//! seals (the service's label check is the backstop there).
//!
//! Write ordering: a put first preserves the currently-committed frame as a
//! `*.ckpt.prev` hard link (overwrites only), then renames the new frame
//! into place, then updates the manifest, then drops the link. A crash
//! between the rename and the manifest update therefore discards only the
//! newest slice: recovery sees the disagreement on the final name, finds the
//! preserved previous frame still matching the manifest record, and promotes
//! it back — the session falls back one slice instead of restarting fresh
//! ([`RecoveryReport::restored_previous`]). Completion marks the record
//! *done* in the manifest *before* unlinking the frame (a crash in between
//! is swept as done-with-leftover-frame).
//!
//! # Degradation & fault injection
//!
//! Writes retry with bounded exponential backoff ([`StoreOptions`]); callers
//! (the [`crate::service::SessionService`]) treat a put that still fails as a
//! *degraded* write and fall back to resident frozen bytes rather than
//! failing the job. All I/O paths consult an optional [`FaultPlan`]
//! ([`FaultSite::StoreWrite`] / [`FaultSite::StoreRead`] /
//! [`FaultSite::StoreRename`]) so torn writes, bit flips and synthetic I/O
//! errors are injectable deterministically — `tests/checkpoint_fuzz.rs` and
//! `tests/service_recovery.rs` drive these hooks.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::checkpoint::{
    fnv1a64, open_frame, open_frame_with_kind, seal_frame_with_kind, ByteReader, ByteWriter,
    CheckpointError, KIND_MANIFEST,
};
use crate::fault::{apply_bit_flip, Fault, FaultPlan, FaultSite};

/// File name of the store manifest inside the store directory.
const MANIFEST_NAME: &str = "MANIFEST";

/// Extension of checkpoint frame files.
const FRAME_EXT: &str = "ckpt";

/// Suffix of in-flight atomic-write temporaries (swept at open).
const TMP_SUFFIX: &str = ".tmp";

/// Suffix frames are quarantined under when recovery rejects them. Kept on
/// disk for forensics; never read back as a frame.
const CORRUPT_SUFFIX: &str = ".corrupt";

/// Suffix of the preserved previous frame during an overwriting put: the
/// fallback recovery promotes back when a crash lands between the frame
/// rename and the manifest update. Swept at open otherwise.
const PREV_SUFFIX: &str = ".prev";

/// A typed store failure. `Clone`/`PartialEq` so it can ride inside
/// [`crate::CoreError`]; raw `std::io::Error` details are carried as strings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An I/O operation failed (after the store's bounded retries, where
    /// retries apply).
    Io {
        /// The operation that failed (`"write"`, `"rename"`, `"read"`, …).
        op: &'static str,
        /// Path involved.
        path: String,
        /// Stringified OS error (or injected-fault marker).
        detail: String,
    },
    /// A stored frame failed its integrity checks (sealed-frame validation).
    Corrupt {
        /// Session id of the offending entry.
        id: String,
        /// The underlying frame-validation failure.
        source: CheckpointError,
    },
    /// The manifest and the on-disk frame disagree (wrong length/checksum,
    /// frame missing for an active record, or frame present without a
    /// record). The entry is discarded — never resurrected on a guess.
    ManifestDisagreement {
        /// Session id of the offending entry.
        id: String,
        /// What disagreed.
        detail: String,
    },
    /// No active entry under this id.
    UnknownSession {
        /// The id that was looked up.
        id: String,
    },
    /// The session id cannot be used as a store key.
    InvalidId {
        /// The offending id.
        id: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "store {op} failed for `{path}`: {detail}")
            }
            StoreError::Corrupt { id, source } => {
                write!(f, "stored frame for session `{id}` is corrupt: {source}")
            }
            StoreError::ManifestDisagreement { id, detail } => {
                write!(f, "manifest/frame disagreement for session `{id}`: {detail}")
            }
            StoreError::UnknownSession { id } => write!(f, "no stored session `{id}`"),
            StoreError::InvalidId { id, reason } => {
                write!(f, "invalid session id `{id}`: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Durability tuning for a [`SessionStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Total attempts per durable write (first try + retries). At least 1.
    pub write_attempts: usize,
    /// Backoff before the first retry; doubles per subsequent retry
    /// (bounded by `write_attempts`).
    pub retry_backoff: Duration,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { write_attempts: 3, retry_backoff: Duration::from_millis(1) }
    }
}

/// What [`SessionStore::open`]'s recovery scan found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Ids with a manifest-consistent sealed frame, re-admittable via
    /// [`SessionStore::get`].
    pub recovered: Vec<String>,
    /// Entries discarded with their typed reasons (frame quarantined to
    /// `*.ckpt.corrupt` when bytes existed). These jobs restart fresh.
    pub discarded: Vec<(String, StoreError)>,
    /// Stale `*.tmp` files swept (the trace of crashes mid-write).
    pub swept_temp_files: usize,
    /// `done` records garbage-collected (including leftover frames from a
    /// crash between the done-mark and the unlink).
    pub swept_done: usize,
    /// Whether the manifest was missing/corrupt and rebuilt by adopting
    /// internally-sealed frames.
    pub manifest_rebuilt: bool,
    /// Sessions whose newest frame was lost to a crash mid-put but whose
    /// preserved previous frame still matched the manifest and was promoted
    /// back (the session resumes one slice behind instead of fresh).
    pub restored_previous: usize,
}

/// Lifecycle state of a manifest record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Active,
    Done,
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    state: EntryState,
    frame_len: u64,
    frame_checksum: u64,
}

/// The crash-safe on-disk session store. All methods take `&self` and are
/// safe to call from many scheduler workers at once; the manifest is
/// serialised internally. See the module docs for the durability contract.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    options: StoreOptions,
    fault_plan: Option<Arc<FaultPlan>>,
    entries: Mutex<BTreeMap<String, ManifestEntry>>,
    recovery: RecoveryReport,
}

impl SessionStore {
    /// Opens (creating if needed) the store at `dir` with default options and
    /// runs the recovery scan. See [`SessionStore::open_with`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<SessionStore, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (creating if needed) the store at `dir`: sweeps stale temp
    /// files, loads or rebuilds the manifest, reconciles it against the
    /// on-disk frames (see module docs for the state machine), and persists
    /// the reconciled manifest. The scan's findings are available from
    /// [`SessionStore::recovery`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<SessionStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|err| io_error("create", &dir, &err))?;
        let mut store = SessionStore {
            dir,
            options,
            fault_plan: None,
            entries: Mutex::new(BTreeMap::new()),
            recovery: RecoveryReport::default(),
        };
        store.recovery = store.reconcile()?;
        Ok(store)
    }

    /// Arms deterministic fault injection on every subsequent I/O operation
    /// (reads, writes, renames — including manifest traffic). Call before
    /// sharing the store with a service run.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the opening recovery scan found and did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Ids with an active stored frame, sorted.
    pub fn active_ids(&self) -> Vec<String> {
        self.lock_entries()
            .iter()
            .filter(|(_, entry)| entry.state == EntryState::Active)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Whether `id` has an active stored frame.
    pub fn is_active(&self, id: &str) -> bool {
        self.lock_entries().get(id).is_some_and(|entry| entry.state == EntryState::Active)
    }

    /// Durably stores `frame` under `id` (atomic write, bounded retries, then
    /// manifest update). On success the frame survives a process kill at any
    /// later point. On failure the previous frame (if any) is untouched.
    pub fn put(&self, id: &str, frame: &[u8]) -> Result<(), StoreError> {
        validate_id(id)?;
        let path = self.frame_path(id);
        let prev = prev_path(&path);
        let entry = ManifestEntry {
            state: EntryState::Active,
            frame_len: frame.len() as u64,
            frame_checksum: fnv1a64(frame),
        };
        let mut entries = self.lock_entries();
        // Preserve the committed frame across the rename-vs-manifest crash
        // window (overwrites only): a hard link is free and atomic; recovery
        // promotes it back if the manifest still points at it.
        let _ = fs::remove_file(&prev);
        let preserved = entries.get(id).is_some_and(|e| e.state == EntryState::Active)
            && (fs::hard_link(&path, &prev).is_ok() || fs::copy(&path, &prev).is_ok());
        if let Err(err) = self.with_retries(|| self.write_file_atomic(&path, frame)) {
            let _ = fs::remove_file(&prev);
            return Err(err);
        }
        let previous_entry = entries.insert(id.to_string(), entry);
        let result = self.with_retries(|| self.persist_manifest(&entries));
        match &result {
            Ok(()) => {
                let _ = fs::remove_file(&prev);
            }
            Err(_) => match previous_entry {
                Some(old) if preserved => {
                    // Manifest still records the previous frame: roll the
                    // file back so disk, memory and a restart all agree on
                    // that frame.
                    let _ = fs::rename(&prev, &path);
                    entries.insert(id.to_string(), old);
                }
                _ => {
                    // No previous frame to fall back to: drop the record
                    // (and the now-unaccounted frame) so the in-memory view
                    // matches what a restart would conclude.
                    entries.remove(id);
                    let _ = fs::remove_file(&prev);
                    let _ = fs::remove_file(&path);
                }
            },
        }
        result
    }

    /// Loads the active frame stored under `id`, re-validating it end to end
    /// (manifest length/checksum, then the sealed-frame checks).
    pub fn get(&self, id: &str) -> Result<Vec<u8>, StoreError> {
        validate_id(id)?;
        let entry = match self.lock_entries().get(id) {
            Some(entry) if entry.state == EntryState::Active => entry.clone(),
            _ => return Err(StoreError::UnknownSession { id: id.to_string() }),
        };
        let path = self.frame_path(id);
        let bytes = self.read_file(&path)?;
        if bytes.len() as u64 != entry.frame_len || fnv1a64(&bytes) != entry.frame_checksum {
            return Err(StoreError::ManifestDisagreement {
                id: id.to_string(),
                detail: format!(
                    "frame is {} bytes with checksum {:#018x}, manifest records {} bytes with \
                     checksum {:#018x}",
                    bytes.len(),
                    fnv1a64(&bytes),
                    entry.frame_len,
                    entry.frame_checksum
                ),
            });
        }
        open_frame(&bytes).map_err(|source| StoreError::Corrupt { id: id.to_string(), source })?;
        Ok(bytes)
    }

    /// Marks `id` complete and removes its frame: the record goes *done* in
    /// the manifest first, then the frame is unlinked (a crash in between is
    /// swept at the next open). After this, the session is no longer
    /// recoverable — call it only once the job's result is delivered.
    pub fn remove(&self, id: &str) -> Result<(), StoreError> {
        validate_id(id)?;
        let mut entries = self.lock_entries();
        let Some(entry) = entries.get_mut(id) else {
            return Err(StoreError::UnknownSession { id: id.to_string() });
        };
        entry.state = EntryState::Done;
        self.with_retries(|| self.persist_manifest(&entries))?;
        let path = self.frame_path(id);
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(io_error("remove", &path, &err)),
        }
        entries.remove(id);
        Ok(())
    }

    /// On-disk path of `id`'s frame file (ids are percent-encoded into safe
    /// file names).
    pub fn frame_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{}.{FRAME_EXT}", encode_id(id)))
    }

    fn lock_entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, ManifestEntry>> {
        // Manifest state stays consistent even if a panicking thread held the
        // lock: every mutation is a whole-entry insert/update.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `attempt` up to `write_attempts` times with doubling backoff.
    fn with_retries(
        &self,
        mut attempt: impl FnMut() -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let attempts = self.options.write_attempts.max(1);
        let mut backoff = self.options.retry_backoff;
        let mut last = Ok(());
        for round in 0..attempts {
            if round > 0 && !backoff.is_zero() {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            last = attempt();
            if last.is_ok() {
                return Ok(());
            }
        }
        last
    }

    /// One atomic durable write: temp file → fsync → rename → directory
    /// fsync, with `StoreWrite`/`StoreRename` fault hooks.
    fn write_file_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        let fault =
            self.fault_plan.as_ref().and_then(|p| p.decide(FaultSite::StoreWrite, bytes.len()));
        match fault {
            Some(Fault::IoError) => {
                return Err(injected_io("write", &tmp));
            }
            Some(Fault::TornWrite { keep }) => {
                // The crash-mid-write trace: a torn temp file left behind.
                let _ = fs::write(&tmp, &bytes[..keep.min(bytes.len())]);
                return Err(StoreError::Io {
                    op: "write",
                    path: tmp.display().to_string(),
                    detail: "injected fault: torn write".into(),
                });
            }
            Some(flip @ Fault::BitFlip { .. }) => {
                // Silent corruption: the write "succeeds" with damaged bytes;
                // the manifest checksum catches it at the next read/recovery.
                let mut damaged = bytes.to_vec();
                apply_bit_flip(flip, &mut damaged);
                self.write_file_raw(&tmp, &damaged)?;
            }
            _ => self.write_file_raw(&tmp, bytes)?,
        }
        if let Some(Fault::IoError) =
            self.fault_plan.as_ref().and_then(|p| p.decide(FaultSite::StoreRename, bytes.len()))
        {
            return Err(injected_io("rename", path));
        }
        fs::rename(&tmp, path).map_err(|err| io_error("rename", path, &err))?;
        self.sync_dir()
    }

    fn write_file_raw(&self, tmp: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let mut file = fs::File::create(tmp).map_err(|err| io_error("create", tmp, &err))?;
        file.write_all(bytes).map_err(|err| io_error("write", tmp, &err))?;
        file.sync_all().map_err(|err| io_error("fsync", tmp, &err))
    }

    fn sync_dir(&self) -> Result<(), StoreError> {
        let dir = fs::File::open(&self.dir).map_err(|err| io_error("open", &self.dir, &err))?;
        dir.sync_all().map_err(|err| io_error("fsync", &self.dir, &err))
    }

    /// One read with the `StoreRead` fault hooks (synthetic errors and
    /// in-flight bit flips).
    fn read_file(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut bytes = fs::read(path).map_err(|err| io_error("read", path, &err))?;
        match self.fault_plan.as_ref().and_then(|p| p.decide(FaultSite::StoreRead, bytes.len())) {
            Some(Fault::IoError) => return Err(injected_io("read", path)),
            Some(flip @ Fault::BitFlip { .. }) => {
                apply_bit_flip(flip, &mut bytes);
            }
            _ => {}
        }
        Ok(bytes)
    }

    /// Serialises and durably writes the manifest (callers hold the entry
    /// lock, so manifest writers are serialised).
    fn persist_manifest(
        &self,
        entries: &BTreeMap<String, ManifestEntry>,
    ) -> Result<(), StoreError> {
        let mut w = ByteWriter::new();
        w.put_usize(entries.len());
        for (id, entry) in entries {
            w.put_bytes(id.as_bytes());
            w.put_u8(match entry.state {
                EntryState::Active => 0,
                EntryState::Done => 1,
            });
            w.put_u64(entry.frame_len);
            w.put_u64(entry.frame_checksum);
        }
        let payload = w.into_bytes();
        let frame = seal_frame_with_kind(KIND_MANIFEST, fnv1a64(&payload), &payload);
        self.write_file_atomic(&self.dir.join(MANIFEST_NAME), &frame)
    }

    /// Parses manifest bytes (inverse of [`SessionStore::persist_manifest`]).
    fn parse_manifest(bytes: &[u8]) -> Result<BTreeMap<String, ManifestEntry>, CheckpointError> {
        let (digest, payload) = open_frame_with_kind(KIND_MANIFEST, bytes)?;
        let found = fnv1a64(payload);
        if digest != found {
            return Err(CheckpointError::DigestMismatch { expected: digest, found });
        }
        let mut r = ByteReader::new(payload);
        let count = r.take_usize()?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let id = String::from_utf8(r.take_bytes()?.to_vec())
                .map_err(|_| CheckpointError::Malformed("manifest id is not UTF-8".into()))?;
            let state = match r.take_u8()? {
                0 => EntryState::Active,
                1 => EntryState::Done,
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "invalid manifest entry state {other}"
                    )))
                }
            };
            let frame_len = r.take_u64()?;
            let frame_checksum = r.take_u64()?;
            entries.insert(id, ManifestEntry { state, frame_len, frame_checksum });
        }
        r.expect_end()?;
        Ok(entries)
    }

    /// The recovery scan (see module docs for the full state machine).
    fn reconcile(&mut self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();

        // 1. Sweep atomic-write temporaries: they are, by construction, the
        //    only files a crash can leave half-written.
        let mut frames_on_disk: Vec<String> = Vec::new();
        let mut prev_files: Vec<PathBuf> = Vec::new();
        let listing = fs::read_dir(&self.dir).map_err(|err| io_error("scan", &self.dir, &err))?;
        for entry in listing {
            let entry = entry.map_err(|err| io_error("scan", &self.dir, &err))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(TMP_SUFFIX) {
                if fs::remove_file(entry.path()).is_ok() {
                    report.swept_temp_files += 1;
                }
            } else if name.ends_with(PREV_SUFFIX) {
                // Preserved previous frames: only authoritative when the
                // manifest still describes them — checked per record below,
                // leftovers swept after the scan.
                prev_files.push(entry.path());
            } else if let Some(stem) = name.strip_suffix(&format!(".{FRAME_EXT}")) {
                if let Some(id) = decode_id(stem) {
                    frames_on_disk.push(id);
                }
            }
        }

        // 2. Load the manifest; a missing or corrupt one switches the scan to
        //    rebuild mode.
        let manifest_path = self.dir.join(MANIFEST_NAME);
        let manifest =
            self.read_file(&manifest_path).ok().and_then(|bytes| Self::parse_manifest(&bytes).ok());

        let mut reconciled: BTreeMap<String, ManifestEntry> = BTreeMap::new();
        match manifest {
            Some(entries) => {
                for (id, entry) in entries {
                    let path = self.frame_path(&id);
                    match entry.state {
                        EntryState::Done => {
                            // Crash window between done-mark and unlink.
                            let _ = fs::remove_file(&path);
                            report.swept_done += 1;
                        }
                        EntryState::Active => match self.read_file(&path) {
                            Ok(bytes)
                                if bytes.len() as u64 == entry.frame_len
                                    && fnv1a64(&bytes) == entry.frame_checksum =>
                            {
                                match open_frame(&bytes) {
                                    Ok(_) => {
                                        reconciled.insert(id.clone(), entry);
                                        report.recovered.push(id);
                                    }
                                    Err(source) => {
                                        self.quarantine_frame(&path);
                                        report
                                            .discarded
                                            .push((id.clone(), StoreError::Corrupt { id, source }));
                                    }
                                }
                            }
                            Ok(_) if self.restore_previous(&path, &entry) => {
                                // Crash mid-put: the final name held the
                                // torn newer frame, the preserved previous
                                // one still matches the manifest. Promoted
                                // back; the session resumes one slice behind.
                                reconciled.insert(id.clone(), entry);
                                report.recovered.push(id);
                                report.restored_previous += 1;
                            }
                            Ok(bytes) => {
                                self.quarantine_frame(&path);
                                let detail = format!(
                                    "frame is {} bytes with checksum {:#018x}, manifest records \
                                     {} bytes with checksum {:#018x}",
                                    bytes.len(),
                                    fnv1a64(&bytes),
                                    entry.frame_len,
                                    entry.frame_checksum
                                );
                                report.discarded.push((
                                    id.clone(),
                                    StoreError::ManifestDisagreement { id, detail },
                                ));
                            }
                            Err(_) if self.restore_previous(&path, &entry) => {
                                reconciled.insert(id.clone(), entry);
                                report.recovered.push(id);
                                report.restored_previous += 1;
                            }
                            Err(err) => {
                                self.quarantine_frame(&path);
                                report.discarded.push((
                                    id.clone(),
                                    StoreError::ManifestDisagreement {
                                        id,
                                        detail: format!(
                                            "active record but frame unreadable: {err}"
                                        ),
                                    },
                                ));
                            }
                        },
                    }
                }
                // Frames on disk with no manifest record: the rename-before-
                // manifest crash window, or foreign files. Discard — the
                // record is authoritative.
                for id in frames_on_disk {
                    if !reconciled.contains_key(&id)
                        && !report.discarded.iter().any(|(d, _)| d == &id)
                        && !report.recovered.contains(&id)
                    {
                        self.quarantine_frame(&self.frame_path(&id));
                        report.discarded.push((
                            id.clone(),
                            StoreError::ManifestDisagreement {
                                id,
                                detail: "frame present without a manifest record".into(),
                            },
                        ));
                    }
                }
            }
            None => {
                // Rebuild mode: adopt every internally-sealed frame. The
                // service's scenario-label check is the backstop against a
                // mis-keyed frame here.
                report.manifest_rebuilt = true;
                for id in frames_on_disk {
                    let path = self.frame_path(&id);
                    match self.read_file(&path) {
                        Ok(bytes) => match open_frame(&bytes) {
                            Ok(_) => {
                                reconciled.insert(
                                    id.clone(),
                                    ManifestEntry {
                                        state: EntryState::Active,
                                        frame_len: bytes.len() as u64,
                                        frame_checksum: fnv1a64(&bytes),
                                    },
                                );
                                report.recovered.push(id);
                            }
                            Err(source) => {
                                self.quarantine_frame(&path);
                                report
                                    .discarded
                                    .push((id.clone(), StoreError::Corrupt { id, source }));
                            }
                        },
                        Err(err) => {
                            self.quarantine_frame(&path);
                            report.discarded.push((id, err));
                        }
                    }
                }
            }
        }

        // Leftover preserved-previous frames (their put committed, or their
        // record resolved above): never authoritative on their own — sweep.
        for prev in prev_files {
            if fs::remove_file(&prev).is_ok() {
                report.swept_temp_files += 1;
            }
        }

        let persist = self.with_retries(|| self.persist_manifest(&reconciled));
        *self.lock_entries() = reconciled;
        persist?;
        report.recovered.sort();
        Ok(report)
    }

    /// Attempts to promote the preserved previous frame back into place when
    /// the manifest record still describes it exactly — the crash-mid-put
    /// fallback (see the module docs on write ordering). On success the
    /// final frame name holds the previous, manifest-consistent bytes.
    fn restore_previous(&self, path: &Path, entry: &ManifestEntry) -> bool {
        let prev = prev_path(path);
        let Ok(bytes) = self.read_file(&prev) else {
            return false;
        };
        bytes.len() as u64 == entry.frame_len
            && fnv1a64(&bytes) == entry.frame_checksum
            && open_frame(&bytes).is_ok()
            && fs::rename(&prev, path).is_ok()
    }

    /// Moves a rejected frame aside (best-effort) so it is never read as a
    /// frame again but stays available for forensics.
    fn quarantine_frame(&self, path: &Path) {
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(CORRUPT_SUFFIX);
        let _ = fs::rename(path, PathBuf::from(quarantined));
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(TMP_SUFFIX);
    PathBuf::from(tmp)
}

fn prev_path(path: &Path) -> PathBuf {
    let mut prev = path.as_os_str().to_owned();
    prev.push(PREV_SUFFIX);
    PathBuf::from(prev)
}

fn io_error(op: &'static str, path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::Io { op, path: path.display().to_string(), detail: err.to_string() }
}

fn injected_io(op: &'static str, path: &Path) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        detail: "injected fault: synthetic I/O error".into(),
    }
}

fn validate_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() {
        return Err(StoreError::InvalidId { id: id.into(), reason: "empty id".into() });
    }
    if id.len() > 512 {
        return Err(StoreError::InvalidId {
            id: id.into(),
            reason: "id longer than 512 bytes".into(),
        });
    }
    // Worst case every byte percent-encodes to three; the stem plus the
    // frame extension must stay under common 255-byte file-name limits, so
    // oversized ids fail typed here instead of as an opaque I/O error at
    // the first write.
    let encoded = encode_id(id).len();
    if encoded > 240 {
        return Err(StoreError::InvalidId {
            id: id.into(),
            reason: format!("id encodes to a {encoded}-byte file name (limit 240)"),
        });
    }
    Ok(())
}

/// Percent-encodes an id into a safe file-name stem: ASCII alphanumerics,
/// `-`, `_` and `.` pass through (except a leading `.`); everything else
/// becomes `%XX` per byte. Injective, so distinct ids never collide on disk.
fn encode_id(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for (index, byte) in id.bytes().enumerate() {
        let plain = byte.is_ascii_alphanumeric()
            || byte == b'-'
            || byte == b'_'
            || (byte == b'.' && index > 0);
        if plain && byte != b'%' {
            out.push(byte as char);
        } else {
            out.push('%');
            out.push_str(&format!("{byte:02X}"));
        }
    }
    out
}

/// Inverse of [`encode_id`]; `None` for stems that are not valid encodings
/// (foreign files in the store directory are simply ignored by the scan).
/// Only **canonical** stems decode: re-encoding the decoded id must
/// reproduce the stem byte for byte, so aliases like `%2E%2E` for `..`
/// (whose canonical stem is `%2E.`) or lowercase hex are rejected — two
/// distinct on-disk stems can never claim the same session id, and ids the
/// validator refuses (empty, oversized) have no decodable stem at all.
fn decode_id(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = stem.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    let id = String::from_utf8(out).ok()?;
    if validate_id(&id).is_err() || encode_id(&id) != stem {
        return None;
    }
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "harvsim-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn frame(tag: u8) -> Vec<u8> {
        // Any sealed session-kind frame works for store-level tests.
        crate::checkpoint::seal_frame(fnv1a64(&[tag]), &[tag; 32])
    }

    #[test]
    fn id_encoding_is_injective_and_reversible() {
        for id in ["job-1", "a b/c", "..", "%41", "näme", ".hidden"] {
            let enc = encode_id(id);
            assert!(!enc.contains('/'), "{enc}");
            assert!(!enc.starts_with('.'), "{enc}");
            assert_eq!(decode_id(&enc).as_deref(), Some(id), "roundtrip of {id:?}");
        }
        assert_ne!(encode_id("a/b"), encode_id("a%2Fb"));
    }

    #[test]
    fn put_get_remove_roundtrip_and_recovery_across_reopen() {
        let dir = unique_dir("roundtrip");
        let store = SessionStore::open(&dir).unwrap();
        assert!(store.active_ids().is_empty());
        store.put("alpha", &frame(1)).unwrap();
        store.put("beta", &frame(2)).unwrap();
        assert_eq!(store.active_ids(), vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(store.get("alpha").unwrap(), frame(1));
        // Overwrite is atomic and replaces the record.
        store.put("alpha", &frame(3)).unwrap();
        assert_eq!(store.get("alpha").unwrap(), frame(3));
        store.remove("beta").unwrap();
        assert!(matches!(store.get("beta"), Err(StoreError::UnknownSession { .. })));
        drop(store);

        // Reopen: alpha survives the "restart", beta stays gone.
        let store = SessionStore::open(&dir).unwrap();
        assert_eq!(store.recovery().recovered, vec!["alpha".to_string()]);
        assert_eq!(store.get("alpha").unwrap(), frame(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_faults_exhaust_retries_with_a_typed_error_and_flips_are_caught() {
        let dir = unique_dir("faults");
        let mut store = SessionStore::open_with(
            &dir,
            StoreOptions { write_attempts: 2, retry_backoff: Duration::ZERO },
        )
        .unwrap();
        let plan = Arc::new(FaultPlan::new(11).with_site_kinds(
            FaultSite::StoreWrite,
            1,
            u64::MAX,
            &[FaultKind::Io],
        ));
        store.set_fault_plan(Some(plan));
        match store.put("gamma", &frame(4)) {
            Err(StoreError::Io { detail, .. }) => assert!(detail.contains("injected")),
            other => panic!("expected injected Io error, got {other:?}"),
        }
        store.set_fault_plan(None);

        // A bit-flipped write "succeeds" silently; the manifest checksum
        // catches it on read, typed — never a resurrect.
        store.set_fault_plan(Some(Arc::new(FaultPlan::new(12).with_site_kinds(
            FaultSite::StoreWrite,
            1,
            1,
            &[FaultKind::Flip],
        ))));
        store.put("delta", &frame(5)).unwrap();
        store.set_fault_plan(None);
        match store.get("delta") {
            Err(StoreError::ManifestDisagreement { .. }) => {}
            other => panic!("expected a manifest disagreement, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_discards_manifestless_frames_and_sweeps_temps() {
        let dir = unique_dir("reconcile");
        {
            let store = SessionStore::open(&dir).unwrap();
            store.put("keep", &frame(6)).unwrap();
        }
        // A frame with no manifest record (rename-before-manifest window)...
        fs::write(dir.join("orphan.ckpt"), frame(7)).unwrap();
        // ...and a stale atomic-write temp.
        fs::write(dir.join("stale.ckpt.tmp"), b"half").unwrap();

        let store = SessionStore::open(&dir).unwrap();
        let recovery = store.recovery();
        assert_eq!(recovery.recovered, vec!["keep".to_string()]);
        assert_eq!(recovery.swept_temp_files, 1);
        assert_eq!(recovery.discarded.len(), 1);
        assert!(matches!(recovery.discarded[0].1, StoreError::ManifestDisagreement { .. }));
        assert!(!dir.join("orphan.ckpt").exists());
        assert!(dir.join("orphan.ckpt.corrupt").exists(), "rejected frames are quarantined");
        assert!(!dir.join("stale.ckpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
