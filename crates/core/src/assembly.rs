//! Composition of component blocks into the global linearised system (Eq. 2)
//! and elimination of the terminal variables (Eq. 4).
//!
//! Each block contributes local state equations and algebraic (terminal)
//! constraints; the assembler
//!
//! * concatenates the block state vectors into the global state `x`,
//! * maps every block terminal onto a shared *net* (the global non-state
//!   variables `y` — e.g. the generator output `Vm`/`Im` net is shared between
//!   the microgenerator and the multiplier),
//! * stacks the per-block Jacobians into the global `Jxx`, `Jxy`, `Jyx`, `Jyy`
//!   blocks of Eq. 2, and
//! * checks well-posedness: the total number of constraint rows must equal the
//!   number of nets, so that `Jyy` is square and Eq. 4 has a unique solution.

use std::cell::RefCell;

use harvsim_blocks::block::LocalLinearisation;
use harvsim_blocks::{JacobianStructure, StateSpaceBlock};
use harvsim_linalg::{dot_unrolled, DMatrix, DVector, LuDecomposition};

use crate::CoreError;

/// Outcome of one fused relinearisation pass: the Eq. 3 monitor value plus
/// the work the per-block Jacobian-structure contract saved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StampReport {
    /// Largest relative Jacobian change against the previous linearisation
    /// (the Eq. 3 local-linearisation-error monitor).
    pub change: f64,
    /// Number of blocks whose Jacobian scatter + monitor scan were skipped
    /// this pass because their [`JacobianStructure::Constant`] contract
    /// guarantees the stamped values could not have moved (only their affine
    /// terms were refreshed).
    pub constant_stamps_skipped: usize,
    /// Number of [`JacobianStructure::Pwl`] blocks whose *entire* stamp
    /// (scatter, monitor scan and affine refresh) was skipped this pass
    /// because their [`StateSpaceBlock::pwl_signature`] matched the signature
    /// of the values already in the buffer — the segment set is unchanged, so
    /// the contract guarantees a restamp would be bit-identical (ROADMAP item
    /// b: the Dickson relinearise scatter).
    pub pwl_stamps_skipped: usize,
}

/// The global linearisation of the complete analogue model at one time point —
/// the matrices of the paper's Eq. 2.
#[derive(Debug, Clone, Default)]
pub struct GlobalLinearisation {
    /// `∂f_x/∂x` over the global state vector.
    pub jxx: DMatrix,
    /// `∂f_x/∂y` over the global nets.
    pub jxy: DMatrix,
    /// Affine term of the state equations (excitations + companion sources).
    pub ex: DVector,
    /// `∂f_y/∂x` of the stacked algebraic constraints.
    pub jyx: DMatrix,
    /// `∂f_y/∂y` of the stacked algebraic constraints.
    pub jyy: DMatrix,
    /// Affine term of the algebraic constraints.
    pub gy: DVector,
}

impl GlobalLinearisation {
    /// Creates an all-zero linearisation for a system with `states` state
    /// variables, `nets` net (terminal) variables and `constraints` algebraic
    /// constraint rows — the preallocated buffer that
    /// [`AnalogueSystem::linearise_global_into`] refills at every accepted step.
    pub fn zeros(states: usize, nets: usize, constraints: usize) -> Self {
        GlobalLinearisation {
            jxx: DMatrix::zeros(states, states),
            jxy: DMatrix::zeros(states, nets),
            ex: DVector::zeros(states),
            jyx: DMatrix::zeros(constraints, states),
            jyy: DMatrix::zeros(constraints, nets),
            gy: DVector::zeros(constraints),
        }
    }

    /// Returns `(states, nets, constraints)` described by this linearisation.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        (self.jxx.rows(), self.jxy.cols(), self.jyx.rows())
    }

    /// Resets every matrix and vector to zero without changing dimensions, so a
    /// reused buffer can be re-stamped from scratch.
    pub fn clear(&mut self) {
        self.jxx.fill(0.0);
        self.jxy.fill(0.0);
        self.ex.fill(0.0);
        self.jyx.fill(0.0);
        self.jyy.fill(0.0);
        self.gy.fill(0.0);
    }

    /// Eliminates the non-state variables by solving the algebraic part of
    /// Eq. 2 (the paper's Eq. 4 extended with the affine companion terms):
    /// `Jyy·y = −(Jyx·x + g)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if `Jyy` is singular (for example
    /// a floating net with no constraint that references it).
    pub fn solve_terminals(&self, x: &DVector) -> Result<DVector, CoreError> {
        let lu = self.jyy.lu().map_err(|err| {
            CoreError::IllPosedSystem(format!("terminal elimination failed: {err}"))
        })?;
        let mut rhs = DVector::zeros(self.jyx.rows());
        let mut y = DVector::zeros(self.jyy.cols());
        self.solve_terminals_with(&lu, x, &mut rhs, &mut y)?;
        Ok(y)
    }

    /// Allocation-free Eq. 4 solve using an already-computed factorisation of
    /// `Jyy`: fills `rhs` with `−(Jyx·x + g)` and writes the terminal values
    /// into `y`. The caller owns both buffers and the factorisation (see
    /// [`TerminalFactorisation`]), so steady-state steps touch no allocator.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` or `x` do not match this linearisation's dimensions
    /// (caller-owned workspace buffers are sized once; a mismatch is a
    /// programming error, not a recoverable condition).
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch error if the factorisation or `y` do not
    /// match this linearisation's dimensions.
    pub fn solve_terminals_with(
        &self,
        lu: &LuDecomposition,
        x: &DVector,
        rhs: &mut DVector,
        y: &mut DVector,
    ) -> Result<(), CoreError> {
        assert_eq!(rhs.len(), self.jyx.rows(), "terminal rhs buffer dimension mismatch");
        assert_eq!(x.len(), self.jyx.cols(), "state vector dimension mismatch");
        // Fused right-hand-side assembly: one pass instead of
        // multiply-accumulate-negate over three temporaries.
        for i in 0..self.jyx.rows() {
            rhs[i] = -(dot_unrolled(self.jyx.row(i), x.as_slice()) + self.gy[i]);
        }
        lu.solve_into(rhs, y)?;
        Ok(())
    }

    /// Evaluates the state derivative `ẋ = Jxx·x + Jxy·y + e` for already-known
    /// terminal values.
    pub fn state_derivative(&self, x: &DVector, y: &DVector) -> DVector {
        let mut dx = DVector::zeros(self.jxx.rows());
        self.state_derivative_into(x, y, &mut dx);
        dx
    }

    /// Allocation-free variant of [`GlobalLinearisation::state_derivative`]
    /// writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if the vector dimensions do not match the linearisation.
    pub fn state_derivative_into(&self, x: &DVector, y: &DVector, dx: &mut DVector) {
        assert_eq!(dx.len(), self.jxx.rows(), "state derivative buffer dimension mismatch");
        assert_eq!(x.len(), self.jxx.cols(), "state vector dimension mismatch");
        assert_eq!(y.len(), self.jxy.cols(), "terminal vector dimension mismatch");
        // Fused row kernel: both mat-vec products and the affine term in a
        // single pass over the rows (one write per state instead of three).
        for r in 0..self.jxx.rows() {
            dx[r] = dot_unrolled(self.jxx.row(r), x.as_slice())
                + dot_unrolled(self.jxy.row(r), y.as_slice())
                + self.ex[r];
        }
    }

    /// The point total-step matrix `A = Jxx − Jxy·Jyy⁻¹·Jyx` that governs the
    /// explicit-integration stability condition of Eq. 7 (this is the Jacobian
    /// of the reduced system after terminal elimination).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if `Jyy` is singular.
    pub fn total_step_matrix(&self) -> Result<DMatrix, CoreError> {
        let lu = self.jyy.lu().map_err(|err| {
            CoreError::IllPosedSystem(format!("terminal elimination failed: {err}"))
        })?;
        let n = self.jxx.rows();
        let mut yy_inv_yx = DMatrix::zeros(self.jyx.rows(), self.jyx.cols());
        let mut correction = DMatrix::zeros(n, n);
        let mut a_total = DMatrix::zeros(n, n);
        self.total_step_matrix_with(&lu, &mut yy_inv_yx, &mut correction, &mut a_total)?;
        Ok(a_total)
    }

    /// Allocation-free variant of [`GlobalLinearisation::total_step_matrix`]
    /// reusing an existing `Jyy` factorisation and caller-owned intermediates:
    /// `yy_inv_yx` receives `Jyy⁻¹·Jyx`, `correction` receives
    /// `Jxy·Jyy⁻¹·Jyx`, and `a_total` the final total-step matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a_total` is not `states × states` (caller-owned workspace
    /// buffers are sized once; a mismatch is a programming error).
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch error if `yy_inv_yx`, `correction` or the
    /// factorisation do not match this linearisation's dimensions.
    pub fn total_step_matrix_with(
        &self,
        lu: &LuDecomposition,
        yy_inv_yx: &mut DMatrix,
        correction: &mut DMatrix,
        a_total: &mut DMatrix,
    ) -> Result<(), CoreError> {
        lu.solve_matrix_into(&self.jyx, yy_inv_yx)?;
        self.jxy.mul_matrix_into(yy_inv_yx, correction)?;
        a_total.copy_from(&self.jxx);
        *a_total -= &*correction;
        Ok(())
    }

    /// Largest relative change of any Jacobian entry with respect to a previous
    /// linearisation, used as the paper's local-linearisation-error monitor
    /// ("the LLE can be controlled by monitoring the changes in the Jacobian
    /// elements").
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error if the two linearisations describe
    /// differently sized systems.
    pub fn jacobian_change(&self, previous: &GlobalLinearisation) -> Result<f64, CoreError> {
        // One fused pass per Jacobian block computes both maxima the monitor
        // needs (this runs once per accepted solver step).
        let (s_xx, d_xx) = self.jxx.max_abs_and_diff(&previous.jxx)?;
        let (s_xy, d_xy) = self.jxy.max_abs_and_diff(&previous.jxy)?;
        let (s_yx, d_yx) = self.jyx.max_abs_and_diff(&previous.jyx)?;
        let (s_yy, d_yy) = self.jyy.max_abs_and_diff(&previous.jyy)?;
        let scale = s_xx.max(s_xy).max(s_yx).max(s_yy).max(1e-30);
        let change = d_xx.max(d_xy).max(d_yx).max(d_yy);
        Ok(change / scale)
    }
}

/// A cached LU factorisation of the terminal sub-matrix `Jyy`, keyed on the
/// exact contents of the factorised matrix.
///
/// The seed engine re-factorised `Jyy` at every accepted step even though, for
/// the assembled harvester, `Jyy` only ever changes when the digital side
/// switches the load mode: the diode companion conductances live in `Jxx`, not
/// in the constraint rows. [`TerminalFactorisation::refresh`] therefore
/// compares the incoming `Jyy` against the matrix it last factorised and
/// re-runs the (buffer-reusing, allocation-free) LU only when an entry actually
/// changed. For a constant-`Jyy` system the factorisation count collapses from
/// one per step to one per run segment — the asymmetry behind the paper's
/// Table II — while systems whose `Jyy` genuinely moves every step keep the
/// exact per-step behaviour of the seed, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct TerminalFactorisation {
    lu: Option<LuDecomposition>,
    /// Copy of the matrix the current `lu` was computed from (the cache key).
    factored_jyy: DMatrix,
}

impl TerminalFactorisation {
    /// Creates an empty cache; the first [`TerminalFactorisation::refresh`]
    /// performs the initial factorisation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Brings the cache up to date with `lin.jyy`. Returns `true` if a new LU
    /// factorisation was performed, `false` on a cache hit (identical `Jyy`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if `Jyy` is singular; the cache is
    /// invalidated in that case.
    pub fn refresh(&mut self, lin: &GlobalLinearisation) -> Result<bool, CoreError> {
        if self.lu.is_some() && self.factored_jyy == lin.jyy {
            return Ok(false);
        }
        let factored = match self.lu.as_mut() {
            Some(lu) => lu.factor_into(&lin.jyy),
            None => lin.jyy.lu().map(|lu| {
                self.lu = Some(lu);
            }),
        };
        if let Err(err) = factored {
            self.lu = None;
            return Err(CoreError::IllPosedSystem(format!("terminal elimination failed: {err}")));
        }
        if self.factored_jyy.shape() == lin.jyy.shape() {
            self.factored_jyy.copy_from(&lin.jyy);
        } else {
            self.factored_jyy = lin.jyy.clone();
        }
        Ok(true)
    }

    /// The current factorisation, if [`TerminalFactorisation::refresh`] has
    /// succeeded at least once.
    pub fn lu(&self) -> Option<&LuDecomposition> {
        self.lu.as_ref()
    }

    /// The matrix whose factorisation the cache currently holds — the only
    /// datum a checkpoint needs. The LU factors themselves are re-derived at
    /// restore ([`TerminalFactorisation::restore_from_key`]): elimination is
    /// deterministic (largest-magnitude pivot, tolerance recomputed from the
    /// matrix), so re-factoring the identical bits yields identical factors.
    pub(crate) fn cache_key(&self) -> Option<&DMatrix> {
        self.lu.is_some().then_some(&self.factored_jyy)
    }

    /// Rebuilds the cache from a checkpointed key matrix (or clears it for
    /// `None`), preserving the cache-hit behaviour — and therefore the
    /// `factorisations` / `cached_solves` statistics — of the saved run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if the key matrix does not
    /// factor — a checkpoint can only hold a matrix that factored when it was
    /// written, so this indicates corruption.
    pub(crate) fn restore_from_key(&mut self, key: Option<DMatrix>) -> Result<(), CoreError> {
        match key {
            None => {
                self.lu = None;
                self.factored_jyy = DMatrix::zeros(0, 0);
            }
            Some(matrix) => {
                let lu = LuDecomposition::new(&matrix).map_err(|err| {
                    CoreError::IllPosedSystem(format!(
                        "checkpointed terminal matrix does not factor: {err}"
                    ))
                })?;
                self.lu = Some(lu);
                self.factored_jyy = matrix;
            }
        }
        Ok(())
    }
}

/// A complete analogue model that can be linearised at any time point — the
/// interface the march-in-time solver and the Newton–Raphson baseline operate
/// on. [`crate::TunableHarvester`] is the principal implementation.
pub trait AnalogueSystem {
    /// Number of global state variables.
    fn state_count(&self) -> usize;

    /// Number of global nets (non-state / terminal variables).
    fn net_count(&self) -> usize;

    /// Names of the global state variables.
    fn state_names(&self) -> Vec<String>;

    /// Names of the global nets.
    fn net_names(&self) -> Vec<String>;

    /// Global linearisation (Eq. 2) at time `t`, state `x` and net values `y`.
    ///
    /// # Errors
    ///
    /// Implementations may report ill-posed configurations.
    fn linearise_global(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
    ) -> Result<GlobalLinearisation, CoreError>;

    /// Writes the global linearisation into a caller-owned, correctly sized
    /// buffer (see [`GlobalLinearisation::zeros`]). The march-in-time solver
    /// and the Newton–Raphson baseline call this at every accepted step, so
    /// systems on the hot path ([`crate::TunableHarvester`] via
    /// [`Assembly::linearise_global_into`]) override it with an
    /// allocation-free stamping pass; the default delegates to
    /// [`AnalogueSystem::linearise_global`], which keeps simple test systems
    /// working unchanged.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AnalogueSystem::linearise_global`].
    fn linearise_global_into(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<(), CoreError> {
        *out = self.linearise_global(t, x, y)?;
        Ok(())
    }

    /// Relinearises in place and reports the Eq. 3 local-linearisation-error
    /// monitor in one operation: on entry `out` must hold the linearisation of
    /// *this* system at the previous accepted point; on exit it holds the
    /// linearisation at `(t, x, y)` and the returned report carries the
    /// relative Jacobian change between the two (the same maximum
    /// [`GlobalLinearisation::jacobian_change`] computes) plus the number of
    /// constant-contract block stamps the pass skipped.
    ///
    /// This is the solver's steady-state entry point — fusing the change scan
    /// into the stamping pass lets hot implementations
    /// ([`Assembly::relinearise_global_into`]) avoid a second full pass over
    /// the Jacobians and a second buffer, and the per-block
    /// [`harvsim_blocks::JacobianStructure`] contract lets them skip the
    /// scatter + monitor for blocks whose Jacobians cannot have moved. The
    /// default delegates to [`AnalogueSystem::linearise_global`] and the
    /// dense monitor, which keeps simple test systems working unchanged.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AnalogueSystem::linearise_global`], plus a
    /// dimension mismatch if `out` does not match this system.
    fn relinearise_global_into(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<StampReport, CoreError> {
        let fresh = self.linearise_global(t, x, y)?;
        let change = fresh.jacobian_change(out)?;
        *out = fresh;
        Ok(StampReport { change, constant_stamps_skipped: 0, pwl_stamps_skipped: 0 })
    }

    /// Global indices of the states this system declares *stiff* — the
    /// partition the solver advances with the exact exponential update
    /// instead of the explicit Adams–Bashforth march, so their (artificial)
    /// fast poles stop pricing the stability step limit. Queried once per
    /// solver segment; the default declares none, which keeps every simple
    /// test system on the classic unpartitioned path.
    fn stiff_states(&self) -> Vec<usize> {
        Vec::new()
    }
}

/// Placement bookkeeping for one block inside the assembled system.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockSlot {
    name: String,
    state_offset: usize,
    state_count: usize,
    constraint_offset: usize,
    constraint_count: usize,
    /// Local terminal index → global net index.
    terminal_nets: Vec<usize>,
    /// The block's declared Jacobian-structure contract, recorded at
    /// registration so the relinearisation pass can skip the scatter +
    /// monitor for `Constant` contributions without re-asking the block.
    structure: JacobianStructure,
}

/// Builder that wires blocks together net by net.
#[derive(Debug, Default)]
pub struct AssemblyBuilder {
    slots: Vec<BlockSlot>,
    net_names: Vec<String>,
    state_names: Vec<String>,
    state_count: usize,
    constraint_count: usize,
    /// Global indices of the states the blocks declared stiff, in ascending
    /// order (blocks are registered with increasing state offsets).
    stiff_states: Vec<usize>,
}

impl AssemblyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `block`, connecting its terminals (in declaration order) to the
    /// global nets named in `nets`. Nets are created on first use; two blocks
    /// naming the same net share the corresponding terminal variable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the net list length does
    /// not match the block's terminal count.
    pub fn add_block(
        &mut self,
        block: &dyn StateSpaceBlock,
        nets: &[&str],
    ) -> Result<usize, CoreError> {
        if nets.len() != block.terminal_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "block {} has {} terminals but {} nets were supplied",
                block.name(),
                block.terminal_count(),
                nets.len()
            )));
        }
        let mut terminal_nets = Vec::with_capacity(nets.len());
        for net in nets {
            let index = match self.net_names.iter().position(|existing| existing == net) {
                Some(index) => index,
                None => {
                    self.net_names.push((*net).to_string());
                    self.net_names.len() - 1
                }
            };
            terminal_nets.push(index);
        }
        for local in block.stiff_states() {
            if local >= block.state_count() {
                return Err(CoreError::InvalidConfiguration(format!(
                    "block {} declares stiff state {local} but has only {} states",
                    block.name(),
                    block.state_count()
                )));
            }
            let global = self.state_count + local;
            if !self.stiff_states.contains(&global) {
                self.stiff_states.push(global);
            }
        }
        let slot = BlockSlot {
            name: block.name().to_string(),
            state_offset: self.state_count,
            state_count: block.state_count(),
            constraint_offset: self.constraint_count,
            constraint_count: block.constraint_count(),
            terminal_nets,
            structure: block.jacobian_structure(),
        };
        for state_name in block.state_names() {
            self.state_names.push(format!("{}.{}", block.name(), state_name));
        }
        self.state_count += block.state_count();
        self.constraint_count += block.constraint_count();
        self.slots.push(slot);
        Ok(self.slots.len() - 1)
    }

    /// Finalises the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if the total constraint count does
    /// not equal the number of nets (the algebraic system of Eq. 4 would not be
    /// square) or no blocks were added.
    pub fn build(self) -> Result<Assembly, CoreError> {
        if self.slots.is_empty() {
            return Err(CoreError::IllPosedSystem("no blocks were added".to_string()));
        }
        if self.constraint_count != self.net_names.len() {
            return Err(CoreError::IllPosedSystem(format!(
                "{} algebraic constraints for {} nets: the terminal-variable system is not square",
                self.constraint_count,
                self.net_names.len()
            )));
        }
        let scratch = self
            .slots
            .iter()
            .map(|slot| BlockScratch {
                x: DVector::zeros(slot.state_count),
                y: DVector::zeros(slot.terminal_nets.len()),
                lin: LocalLinearisation::zeros(
                    slot.state_count,
                    slot.terminal_nets.len(),
                    slot.constraint_count,
                ),
                static_scale: 0.0,
                signature: None,
                stamped: false,
            })
            .collect();
        // Assignment-based stamping is valid only when no block wires two of
        // its own terminals to the same net (otherwise its contributions to
        // that net's column must accumulate).
        let scatter_by_copy = self.slots.iter().all(|slot| {
            slot.terminal_nets
                .iter()
                .enumerate()
                .all(|(i, net)| !slot.terminal_nets[..i].contains(net))
        });
        Ok(Assembly {
            slots: self.slots,
            net_names: self.net_names,
            state_names: self.state_names,
            state_count: self.state_count,
            constraint_count: self.constraint_count,
            stiff_states: self.stiff_states,
            scatter_by_copy,
            scratch: RefCell::new(scratch),
        })
    }
}

/// Preallocated per-block buffers used by [`Assembly::linearise_global_into`]:
/// the block's local state/terminal views and its local linearisation, all
/// sized once at [`AssemblyBuilder::build`] time and refilled at every step.
#[derive(Debug, Clone)]
struct BlockScratch {
    x: DVector,
    y: DVector,
    lin: LocalLinearisation,
    /// Largest |entry| over the block's Jacobians at the last full stamp —
    /// the skipped block's contribution to the Eq. 3 monitor's scale, so
    /// skipping a `Constant` or signature-matched `Pwl` block leaves the
    /// monitor value bit-identical to a full restamp (its diff contribution
    /// is exactly zero, its scale contribution is this cached maximum).
    static_scale: f64,
    /// The block's [`StateSpaceBlock::pwl_signature`] at the last full stamp
    /// (`None` for blocks that decline the contract). A `Pwl` block whose
    /// fresh signature equals this value is skipped wholesale on the
    /// relinearisation pass: the contract guarantees the values in the global
    /// buffer are already exact.
    signature: Option<u64>,
    /// Whether a full stamp has populated `lin` (plus `static_scale` and
    /// `signature`) since construction — the precondition for both fast
    /// paths.
    stamped: bool,
}

/// The immutable wiring plan of the assembled system.
#[derive(Debug, Clone)]
pub struct Assembly {
    slots: Vec<BlockSlot>,
    net_names: Vec<String>,
    state_names: Vec<String>,
    state_count: usize,
    constraint_count: usize,
    /// Global indices of the states the blocks declared stiff (ascending) —
    /// the stiff side of the solver's partitioned state space.
    stiff_states: Vec<usize>,
    /// Whether the scatter pass may use straight row copies/assignments
    /// instead of accumulating adds (true when every block's terminals map to
    /// distinct nets — writing onto the cleared matrices is then equivalent
    /// and avoids per-element read-modify-write on the hot path).
    scatter_by_copy: bool,
    /// Per-block hot-path buffers behind interior mutability, because the
    /// solver linearises through `&self` (the assembly is shared read-only
    /// between the engine and the measurement layer). The borrow is scoped to
    /// a single `linearise_global_into` call and never re-entered.
    scratch: RefCell<Vec<BlockScratch>>,
}

impl Assembly {
    /// Starts building an assembly.
    pub fn builder() -> AssemblyBuilder {
        AssemblyBuilder::new()
    }

    /// Exports the per-block stamp-cache triples `(static scale, PWL
    /// signature, stamped)` for checkpointing. These are loop-carried: the
    /// relinearisation skip paths compare fresh signatures against them and
    /// feed the cached scale into the Eq. 3 monitor, so a bit-identical
    /// resume (including the `constant/pwl_stamps_skipped` counters) must
    /// restore them rather than start cold. The block-local `lin` buffers are
    /// deliberately excluded — every path that reads them rewrites them first.
    pub(crate) fn stamp_cache(&self) -> Vec<(f64, Option<u64>, bool)> {
        self.scratch
            .borrow()
            .iter()
            .map(|buffers| (buffers.static_scale, buffers.signature, buffers.stamped))
            .collect()
    }

    /// Restores the stamp cache exported by [`Assembly::stamp_cache`].
    /// Returns `false` (leaving the cache untouched) on a block-count
    /// mismatch — the checkpoint was taken from a differently assembled
    /// system.
    pub(crate) fn restore_stamp_cache(&self, cache: &[(f64, Option<u64>, bool)]) -> bool {
        let mut scratch = self.scratch.borrow_mut();
        if scratch.len() != cache.len() {
            return false;
        }
        for (buffers, &(static_scale, signature, stamped)) in scratch.iter_mut().zip(cache) {
            buffers.static_scale = static_scale;
            buffers.signature = signature;
            buffers.stamped = stamped;
        }
        true
    }

    /// Total number of global state variables.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of global nets (terminal variables).
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of blocks in the assembly.
    pub fn block_count(&self) -> usize {
        self.slots.len()
    }

    /// Names of the global state variables (`block.state`).
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Names of the global nets.
    pub fn net_names(&self) -> &[String] {
        &self.net_names
    }

    /// Index of the net with the given name.
    pub fn net_index(&self, name: &str) -> Option<usize> {
        self.net_names.iter().position(|n| n == name)
    }

    /// Global indices of the states the blocks declared stiff (ascending
    /// order) — the stiff side of the partitioned state space, advanced by
    /// the solver's exact exponential lane instead of the explicit march.
    pub fn stiff_states(&self) -> &[usize] {
        &self.stiff_states
    }

    /// Number of registered blocks whose Jacobian contribution is declared
    /// [`JacobianStructure::Constant`] — the blocks the relinearisation pass
    /// can skip entirely (scatter + Eq. 3 monitor) after the segment-opening
    /// full stamp.
    pub fn constant_block_count(&self) -> usize {
        self.slots.iter().filter(|slot| slot.structure == JacobianStructure::Constant).count()
    }

    /// Offset of block `block_index`'s states within the global state vector.
    ///
    /// # Panics
    ///
    /// Panics if `block_index` is out of range.
    pub fn state_offset(&self, block_index: usize) -> usize {
        self.slots[block_index].state_offset
    }

    /// Builds the global initial state by concatenating the blocks' initial
    /// states (in registration order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the provided blocks do not
    /// match the registered slots.
    pub fn initial_state(&self, blocks: &[&dyn StateSpaceBlock]) -> Result<DVector, CoreError> {
        self.check_blocks(blocks)?;
        let mut x = DVector::zeros(self.state_count);
        for (slot, block) in self.slots.iter().zip(blocks) {
            x.set_segment(slot.state_offset, &block.initial_state());
        }
        Ok(x)
    }

    fn check_blocks(&self, blocks: &[&dyn StateSpaceBlock]) -> Result<(), CoreError> {
        if blocks.len() != self.slots.len() {
            return Err(CoreError::InvalidConfiguration(format!(
                "assembly has {} blocks but {} were provided",
                self.slots.len(),
                blocks.len()
            )));
        }
        for (slot, block) in self.slots.iter().zip(blocks) {
            if slot.state_count != block.state_count()
                || slot.terminal_nets.len() != block.terminal_count()
                || slot.constraint_count != block.constraint_count()
            {
                return Err(CoreError::InvalidConfiguration(format!(
                    "block {} no longer matches its registered dimensions",
                    block.name()
                )));
            }
        }
        Ok(())
    }

    /// Assembles the global linearisation (Eq. 2) at time `t`, global state `x`
    /// and net values `y`, by calling every block's local linearisation and
    /// scattering it into the global matrices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the blocks or vector
    /// dimensions do not match the assembly.
    pub fn linearise_global(
        &self,
        blocks: &[&dyn StateSpaceBlock],
        t: f64,
        x: &DVector,
        y: &DVector,
    ) -> Result<GlobalLinearisation, CoreError> {
        let mut out =
            GlobalLinearisation::zeros(self.state_count, self.net_count(), self.constraint_count);
        self.linearise_global_into(blocks, t, x, y, &mut out)?;
        Ok(out)
    }

    /// Assembles the global linearisation into a caller-owned buffer without
    /// allocating: each block writes its Jacobians into the assembly's
    /// preallocated per-block scratch through
    /// [`StateSpaceBlock::linearise_into`], and the scatter pass stamps them
    /// into the preallocated global matrices of `out`. This is the kernel the
    /// march-in-time solver calls at every accepted step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the blocks, vector
    /// dimensions or `out` dimensions do not match the assembly.
    pub fn linearise_global_into(
        &self,
        blocks: &[&dyn StateSpaceBlock],
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<(), CoreError> {
        self.check_blocks(blocks)?;
        if x.len() != self.state_count || y.len() != self.net_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "state/net vector sizes ({}, {}) do not match the assembly ({}, {})",
                x.len(),
                y.len(),
                self.state_count,
                self.net_count()
            )));
        }
        if out.dimensions() != (self.state_count, self.net_count(), self.constraint_count) {
            return Err(CoreError::InvalidConfiguration(format!(
                "linearisation buffer dimensions {:?} do not match the assembly ({}, {}, {})",
                out.dimensions(),
                self.state_count,
                self.net_count(),
                self.constraint_count
            )));
        }
        out.clear();
        let mut scratch = self.scratch.borrow_mut();

        for ((slot, block), buffers) in self.slots.iter().zip(blocks).zip(scratch.iter_mut()) {
            buffers.x.copy_from_segment(x, slot.state_offset);
            for (i, &net) in slot.terminal_nets.iter().enumerate() {
                buffers.y[i] = y[net];
            }
            let signature =
                block.linearise_into_with_signature(t, &buffers.x, &buffers.y, &mut buffers.lin);
            let lin = &buffers.lin;
            debug_assert!(
                lin.is_consistent(),
                "block {} returned inconsistent matrices",
                slot.name
            );
            if slot.structure != JacobianStructure::Nonlinear {
                // Record the block's Eq. 3 scale contribution once: the
                // relinearisation fast paths fold this cached maximum in
                // instead of rescanning Jacobians their contracts pin (the
                // `Constant` affine-only refresh and the `Pwl`
                // signature-matched skip both need it).
                let jac_max =
                    |m: &DMatrix| m.as_slice().iter().fold(0.0_f64, |a, v| a.max(v.abs()));
                buffers.static_scale =
                    jac_max(&lin.a).max(jac_max(&lin.b)).max(jac_max(&lin.c)).max(jac_max(&lin.d));
            }
            buffers.signature =
                if slot.structure == JacobianStructure::Pwl { signature } else { None };
            buffers.stamped = true;

            if self.scatter_by_copy {
                // Fast path: every destination entry is written by exactly one
                // local entry, so block rows land as bulk slice copies and net
                // columns as straight assignments onto the cleared matrices.
                let states = slot.state_offset..slot.state_offset + slot.state_count;
                for row in 0..slot.state_count {
                    let global_row = slot.state_offset + row;
                    out.jxx.row_mut(global_row)[states.clone()].copy_from_slice(lin.a.row(row));
                    let jxy_row = out.jxy.row_mut(global_row);
                    let b_row = lin.b.row(row);
                    for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                        jxy_row[net] = b_row[local_terminal];
                    }
                }
                out.ex.as_mut_slice()[states.clone()].copy_from_slice(lin.e.as_slice());
                for row in 0..slot.constraint_count {
                    let global_row = slot.constraint_offset + row;
                    out.jyx.row_mut(global_row)[states.clone()].copy_from_slice(lin.c.row(row));
                    let jyy_row = out.jyy.row_mut(global_row);
                    let d_row = lin.d.row(row);
                    for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                        jyy_row[net] = d_row[local_terminal];
                    }
                    out.gy[global_row] = lin.g[row];
                }
                continue;
            }

            // General path: accumulate (a block may wire two terminals to the
            // same net, so contributions to that column must add up).
            out.jxx.add_block(slot.state_offset, slot.state_offset, &lin.a);
            for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                for row in 0..slot.state_count {
                    out.jxy.add_to(slot.state_offset + row, net, lin.b[(row, local_terminal)]);
                }
            }
            for row in 0..slot.state_count {
                out.ex[slot.state_offset + row] += lin.e[row];
            }

            // Algebraic constraints.
            for row in 0..slot.constraint_count {
                let global_row = slot.constraint_offset + row;
                for col in 0..slot.state_count {
                    out.jyx.add_to(global_row, slot.state_offset + col, lin.c[(row, col)]);
                }
                for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                    out.jyy.add_to(global_row, net, lin.d[(row, local_terminal)]);
                }
                out.gy[global_row] += lin.g[row];
            }
        }

        Ok(())
    }

    /// Fused relinearisation: re-stamps `out` in place — which must hold the
    /// linearisation this assembly produced at the previous accepted point —
    /// and computes the Eq. 3 relative Jacobian change against those previous
    /// contents during the same pass. Every stamped destination is read once
    /// (the previous value) and written once (the new value), so the
    /// steady-state solver step needs neither a second linearisation buffer
    /// nor a separate change-scan pass. Entries outside the stamp pattern are
    /// structurally zero in both linearisations and contribute nothing to
    /// either maximum, which makes the result identical to
    /// [`GlobalLinearisation::jacobian_change`] on two full buffers.
    ///
    /// Blocks under the [`JacobianStructure::Constant`] contract are not
    /// restamped at all: their Jacobian rows in `out` are already exact (the
    /// segment-opening full stamp wrote them and the contract pins them),
    /// their diff contribution to the monitor is identically zero, and their
    /// scale contribution is folded in from the maximum cached at the full
    /// stamp — so the returned monitor value is bit-identical to a full
    /// restamp while the pass touches only their affine terms (via
    /// [`StateSpaceBlock::affine_into`]). The report counts the skips.
    ///
    /// Falls back to a stamp-plus-dense-scan when the assembly wires one
    /// block terminal pair to a shared net (accumulating scatter), which no
    /// hot topology does.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Assembly::linearise_global_into`].
    pub fn relinearise_global_into(
        &self,
        blocks: &[&dyn StateSpaceBlock],
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<StampReport, CoreError> {
        if !self.scatter_by_copy {
            let fresh = self.linearise_global(blocks, t, x, y)?;
            let change = fresh.jacobian_change(out)?;
            *out = fresh;
            return Ok(StampReport { change, constant_stamps_skipped: 0, pwl_stamps_skipped: 0 });
        }
        self.check_blocks(blocks)?;
        if x.len() != self.state_count || y.len() != self.net_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "state/net vector sizes ({}, {}) do not match the assembly ({}, {})",
                x.len(),
                y.len(),
                self.state_count,
                self.net_count()
            )));
        }
        if out.dimensions() != (self.state_count, self.net_count(), self.constraint_count) {
            return Err(CoreError::InvalidConfiguration(format!(
                "linearisation buffer dimensions {:?} do not match the assembly ({}, {}, {})",
                out.dimensions(),
                self.state_count,
                self.net_count(),
                self.constraint_count
            )));
        }
        let mut scratch = self.scratch.borrow_mut();

        // Two accumulator groups over (max |new|, max |new − old|): four fixed
        // lanes fed by the contiguous row kernel below, plus one scalar pair
        // for the net-scattered entries. Maxima are order-independent, so the
        // combined result is exact.
        let mut scale = [0.0_f64; 4];
        let mut diff = [0.0_f64; 4];
        // Contiguous row stamp: overwrite `dst` with `new` while accumulating
        // the two monitor maxima in fixed four-wide lanes (the pattern the
        // autovectoriser packs — no variable lane indexing on the hot path).
        let mut stamp_row = |dst: &mut [f64], new: &[f64]| {
            let mut dst_chunks = dst.chunks_exact_mut(4);
            let mut new_chunks = new.chunks_exact(4);
            for (d, s) in (&mut dst_chunks).zip(&mut new_chunks) {
                for lane in 0..4 {
                    let old = d[lane];
                    d[lane] = s[lane];
                    scale[lane] = scale[lane].max(s[lane].abs());
                    diff[lane] = diff[lane].max((s[lane] - old).abs());
                }
            }
            for (lane, (d, &s)) in
                dst_chunks.into_remainder().iter_mut().zip(new_chunks.remainder()).enumerate()
            {
                let old = std::mem::replace(d, s);
                scale[lane & 3] = scale[lane & 3].max(s.abs());
                diff[lane & 3] = diff[lane & 3].max((s - old).abs());
            }
        };
        let mut scale_scattered = 0.0_f64;
        let mut diff_scattered = 0.0_f64;
        macro_rules! stamp {
            ($dst:expr, $new:expr) => {{
                let new = $new;
                let old = std::mem::replace($dst, new);
                scale_scattered = scale_scattered.max(new.abs());
                diff_scattered = diff_scattered.max((new - old).abs());
            }};
        }

        let mut constant_stamps_skipped = 0_usize;
        let mut pwl_stamps_skipped = 0_usize;
        for ((slot, block), buffers) in self.slots.iter().zip(blocks).zip(scratch.iter_mut()) {
            buffers.x.copy_from_segment(x, slot.state_offset);
            for (i, &net) in slot.terminal_nets.iter().enumerate() {
                buffers.y[i] = y[net];
            }
            let states = slot.state_offset..slot.state_offset + slot.state_count;

            if slot.structure == JacobianStructure::Constant && buffers.stamped {
                // Constant contract: the Jacobian rows already in `out` are
                // the current values, so only the affine terms need a
                // refresh. The monitor sees a zero diff and the cached scale.
                block.affine_into(t, &buffers.x, &buffers.y, &mut buffers.lin);
                out.ex.as_mut_slice()[states.clone()].copy_from_slice(buffers.lin.e.as_slice());
                for row in 0..slot.constraint_count {
                    out.gy[slot.constraint_offset + row] = buffers.lin.g[row];
                }
                scale_scattered = scale_scattered.max(buffers.static_scale);
                constant_stamps_skipped += 1;
                continue;
            }

            if slot.structure == JacobianStructure::Pwl && buffers.stamped {
                // Pwl contract: when the block's segment signature is
                // unchanged since the values in `out` were stamped, the
                // contract guarantees a restamp would reproduce them bit for
                // bit — Jacobians *and* affine terms — so the whole stamp is
                // skipped. The check is the lookup-free membership test
                // (`pwl_signature_matches`), the monitor sees a zero diff and
                // the cached scale, exactly as a full restamp would report.
                if let Some(signature) = buffers.signature {
                    if block.pwl_signature_matches(t, &buffers.x, &buffers.y, signature) {
                        scale_scattered = scale_scattered.max(buffers.static_scale);
                        pwl_stamps_skipped += 1;
                        continue;
                    }
                }
            }

            let signature =
                block.linearise_into_with_signature(t, &buffers.x, &buffers.y, &mut buffers.lin);
            let lin = &buffers.lin;
            debug_assert!(
                lin.is_consistent(),
                "block {} returned inconsistent matrices",
                slot.name
            );
            if slot.structure == JacobianStructure::Pwl {
                // Refresh the cached signature and scale so the next
                // membership-matched skip folds in this stamp's maximum.
                buffers.signature = signature;
                let jac_max =
                    |m: &DMatrix| m.as_slice().iter().fold(0.0_f64, |a, v| a.max(v.abs()));
                buffers.static_scale =
                    jac_max(&lin.a).max(jac_max(&lin.b)).max(jac_max(&lin.c)).max(jac_max(&lin.d));
            }

            for row in 0..slot.state_count {
                let global_row = slot.state_offset + row;
                stamp_row(&mut out.jxx.row_mut(global_row)[states.clone()], lin.a.row(row));
                let jxy_row = out.jxy.row_mut(global_row);
                let b_row = lin.b.row(row);
                for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                    stamp!(&mut jxy_row[net], b_row[local_terminal]);
                }
            }
            // Affine terms are not part of the Eq. 3 monitor: plain copies.
            out.ex.as_mut_slice()[states.clone()].copy_from_slice(lin.e.as_slice());
            for row in 0..slot.constraint_count {
                let global_row = slot.constraint_offset + row;
                stamp_row(&mut out.jyx.row_mut(global_row)[states.clone()], lin.c.row(row));
                let jyy_row = out.jyy.row_mut(global_row);
                let d_row = lin.d.row(row);
                for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                    stamp!(&mut jyy_row[net], d_row[local_terminal]);
                }
                out.gy[global_row] = lin.g[row];
            }
        }

        let scale =
            scale[0].max(scale[1]).max(scale[2]).max(scale[3]).max(scale_scattered).max(1e-30);
        let diff = diff[0].max(diff[1]).max(diff[2]).max(diff[3]).max(diff_scattered);
        Ok(StampReport { change: diff / scale, constant_stamps_skipped, pwl_stamps_skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvsim_blocks::block::LocalLinearisation;

    /// A one-state RC block: ẋ = (V_port − x)/(R·C), constraint I_port = (V_port − x)/R.
    struct RcBlock {
        name: String,
        r: f64,
        c: f64,
    }

    impl StateSpaceBlock for RcBlock {
        fn name(&self) -> &str {
            &self.name
        }
        fn state_count(&self) -> usize {
            1
        }
        fn terminal_count(&self) -> usize {
            2
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            vec!["v_cap".to_string()]
        }
        fn terminal_names(&self) -> Vec<String> {
            vec!["V".to_string(), "I".to_string()]
        }
        fn initial_state(&self) -> DVector {
            DVector::zeros(1)
        }
        fn linearise(&self, _t: f64, _x: &DVector, _y: &DVector) -> LocalLinearisation {
            LocalLinearisation {
                a: DMatrix::from_rows(&[&[-1.0 / (self.r * self.c)]]).unwrap(),
                b: DMatrix::from_rows(&[&[1.0 / (self.r * self.c), 0.0]]).unwrap(),
                e: DVector::zeros(1),
                // I - (V - x)/R = 0
                c: DMatrix::from_rows(&[&[1.0 / self.r]]).unwrap(),
                d: DMatrix::from_rows(&[&[-1.0 / self.r, 1.0]]).unwrap(),
                g: DVector::zeros(1),
            }
        }
    }

    /// A source block: fixes its port voltage to a constant and contributes the
    /// constraint V_port − v0 = 0.
    struct SourceBlock {
        v0: f64,
    }

    impl StateSpaceBlock for SourceBlock {
        fn name(&self) -> &str {
            "source"
        }
        fn state_count(&self) -> usize {
            0
        }
        fn terminal_count(&self) -> usize {
            2
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            Vec::new()
        }
        fn terminal_names(&self) -> Vec<String> {
            vec!["V".to_string(), "I".to_string()]
        }
        fn initial_state(&self) -> DVector {
            DVector::zeros(0)
        }
        fn linearise(&self, _t: f64, _x: &DVector, _y: &DVector) -> LocalLinearisation {
            LocalLinearisation {
                a: DMatrix::zeros(0, 0),
                b: DMatrix::zeros(0, 2),
                e: DVector::zeros(0),
                c: DMatrix::zeros(1, 0),
                d: DMatrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
                g: DVector::from_slice(&[-self.v0]),
            }
        }
    }

    fn rc_assembly() -> (Assembly, SourceBlock, RcBlock) {
        let source = SourceBlock { v0: 5.0 };
        let rc = RcBlock { name: "rc".to_string(), r: 1000.0, c: 1e-6 };
        let mut builder = Assembly::builder();
        builder.add_block(&source, &["vin", "iin"]).unwrap();
        builder.add_block(&rc, &["vin", "iin"]).unwrap();
        let assembly = builder.build().unwrap();
        (assembly, source, rc)
    }

    #[test]
    fn builder_tracks_dimensions_and_names() {
        let (assembly, ..) = rc_assembly();
        assert_eq!(assembly.state_count(), 1);
        assert_eq!(assembly.net_count(), 2);
        assert_eq!(assembly.block_count(), 2);
        assert_eq!(assembly.net_index("vin"), Some(0));
        assert_eq!(assembly.net_index("iin"), Some(1));
        assert_eq!(assembly.net_index("missing"), None);
        assert_eq!(assembly.state_names(), &["rc.v_cap".to_string()]);
        assert_eq!(assembly.state_offset(1), 0);
    }

    #[test]
    fn builder_rejects_bad_wiring() {
        let source = SourceBlock { v0: 1.0 };
        let mut builder = Assembly::builder();
        assert!(builder.add_block(&source, &["only-one"]).is_err());
        // Constraint/net mismatch: one block with 2 nets but only 1 constraint.
        let mut builder = Assembly::builder();
        builder.add_block(&source, &["a", "b"]).unwrap();
        assert!(builder.build().is_err());
        // Empty assembly.
        assert!(Assembly::builder().build().is_err());
    }

    #[test]
    fn terminal_elimination_solves_the_rc_divider() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let x = assembly.initial_state(&blocks).unwrap();
        let y0 = DVector::zeros(2);
        let lin = assembly.linearise_global(&blocks, 0.0, &x, &y0).unwrap();
        // Solve Eq. 4: the port voltage must equal the source value and the
        // current must be (V - x)/R = 5 mA at x = 0.
        let y = lin.solve_terminals(&x).unwrap();
        let v = y[assembly.net_index("vin").unwrap()];
        let i = y[assembly.net_index("iin").unwrap()];
        assert!((v - 5.0).abs() < 1e-9);
        assert!((i - 5.0e-3).abs() < 1e-9);
        // State derivative: dx/dt = (5 - 0)/(RC) = 5000 V/s.
        let dx = lin.state_derivative(&x, &y);
        assert!((dx[0] - 5000.0).abs() < 1e-6);
        // Total-step matrix equals -1/(RC) for this single-state system.
        let a = lin.total_step_matrix().unwrap();
        assert!((a[(0, 0)] + 1000.0).abs() < 1e-6);
    }

    #[test]
    fn jacobian_change_monitor() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let x = assembly.initial_state(&blocks).unwrap();
        let y = DVector::zeros(2);
        let lin1 = assembly.linearise_global(&blocks, 0.0, &x, &y).unwrap();
        let lin2 = assembly.linearise_global(&blocks, 1.0, &x, &y).unwrap();
        // The RC system is linear and time-invariant: no Jacobian change at all.
        assert!(lin1.jacobian_change(&lin2).unwrap() < 1e-15);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let wrong_x = DVector::zeros(3);
        let y = DVector::zeros(2);
        assert!(assembly.linearise_global(&blocks, 0.0, &wrong_x, &y).is_err());
        let x = DVector::zeros(1);
        let wrong_y = DVector::zeros(1);
        assert!(assembly.linearise_global(&blocks, 0.0, &x, &wrong_y).is_err());
        let only_one: [&dyn StateSpaceBlock; 1] = [&source];
        assert!(assembly.initial_state(&only_one).is_err());
    }

    #[test]
    fn singular_terminal_system_is_reported() {
        // Two source blocks fighting over the same net make Jyy singular
        // (both constraints involve only the voltage net).
        let s1 = SourceBlock { v0: 1.0 };
        let s2 = SourceBlock { v0: 2.0 };
        let mut builder = Assembly::builder();
        builder.add_block(&s1, &["v", "i"]).unwrap();
        builder.add_block(&s2, &["v", "i"]).unwrap();
        let assembly = builder.build().unwrap();
        let blocks: [&dyn StateSpaceBlock; 2] = [&s1, &s2];
        let x = assembly.initial_state(&blocks).unwrap();
        let y = DVector::zeros(2);
        let lin = assembly.linearise_global(&blocks, 0.0, &x, &y).unwrap();
        assert!(matches!(lin.solve_terminals(&x), Err(CoreError::IllPosedSystem(_))));
    }
}
