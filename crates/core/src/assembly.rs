//! Composition of component blocks into the global linearised system (Eq. 2)
//! and elimination of the terminal variables (Eq. 4).
//!
//! Each block contributes local state equations and algebraic (terminal)
//! constraints; the assembler
//!
//! * concatenates the block state vectors into the global state `x`,
//! * maps every block terminal onto a shared *net* (the global non-state
//!   variables `y` — e.g. the generator output `Vm`/`Im` net is shared between
//!   the microgenerator and the multiplier),
//! * stacks the per-block Jacobians into the global `Jxx`, `Jxy`, `Jyx`, `Jyy`
//!   blocks of Eq. 2, and
//! * checks well-posedness: the total number of constraint rows must equal the
//!   number of nets, so that `Jyy` is square and Eq. 4 has a unique solution.

use harvsim_blocks::StateSpaceBlock;
use harvsim_linalg::{DMatrix, DVector};

use crate::CoreError;

/// The global linearisation of the complete analogue model at one time point —
/// the matrices of the paper's Eq. 2.
#[derive(Debug, Clone)]
pub struct GlobalLinearisation {
    /// `∂f_x/∂x` over the global state vector.
    pub jxx: DMatrix,
    /// `∂f_x/∂y` over the global nets.
    pub jxy: DMatrix,
    /// Affine term of the state equations (excitations + companion sources).
    pub ex: DVector,
    /// `∂f_y/∂x` of the stacked algebraic constraints.
    pub jyx: DMatrix,
    /// `∂f_y/∂y` of the stacked algebraic constraints.
    pub jyy: DMatrix,
    /// Affine term of the algebraic constraints.
    pub gy: DVector,
}

impl GlobalLinearisation {
    /// Eliminates the non-state variables by solving the algebraic part of
    /// Eq. 2 (the paper's Eq. 4 extended with the affine companion terms):
    /// `Jyy·y = −(Jyx·x + g)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if `Jyy` is singular (for example
    /// a floating net with no constraint that references it).
    pub fn solve_terminals(&self, x: &DVector) -> Result<DVector, CoreError> {
        let mut rhs = self.jyx.mul_vector(x);
        rhs += &self.gy;
        let lu = self.jyy.lu().map_err(|err| {
            CoreError::IllPosedSystem(format!("terminal elimination failed: {err}"))
        })?;
        Ok(lu.solve(&(-&rhs))?)
    }

    /// Evaluates the state derivative `ẋ = Jxx·x + Jxy·y + e` for already-known
    /// terminal values.
    pub fn state_derivative(&self, x: &DVector, y: &DVector) -> DVector {
        let mut dx = self.jxx.mul_vector(x);
        dx += &self.jxy.mul_vector(y);
        dx += &self.ex;
        dx
    }

    /// The point total-step matrix `A = Jxx − Jxy·Jyy⁻¹·Jyx` that governs the
    /// explicit-integration stability condition of Eq. 7 (this is the Jacobian
    /// of the reduced system after terminal elimination).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if `Jyy` is singular.
    pub fn total_step_matrix(&self) -> Result<DMatrix, CoreError> {
        let lu = self.jyy.lu().map_err(|err| {
            CoreError::IllPosedSystem(format!("terminal elimination failed: {err}"))
        })?;
        let yy_inv_yx = lu.solve_matrix(&self.jyx)?;
        let correction = self.jxy.mul_matrix(&yy_inv_yx)?;
        Ok(&self.jxx - &correction)
    }

    /// Largest relative change of any Jacobian entry with respect to a previous
    /// linearisation, used as the paper's local-linearisation-error monitor
    /// ("the LLE can be controlled by monitoring the changes in the Jacobian
    /// elements").
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error if the two linearisations describe
    /// differently sized systems.
    pub fn jacobian_change(&self, previous: &GlobalLinearisation) -> Result<f64, CoreError> {
        let scale = self
            .jxx
            .max_abs()
            .max(self.jxy.max_abs())
            .max(self.jyx.max_abs())
            .max(self.jyy.max_abs())
            .max(1e-30);
        let change = self
            .jxx
            .max_abs_diff(&previous.jxx)?
            .max(self.jxy.max_abs_diff(&previous.jxy)?)
            .max(self.jyx.max_abs_diff(&previous.jyx)?)
            .max(self.jyy.max_abs_diff(&previous.jyy)?);
        Ok(change / scale)
    }
}

/// A complete analogue model that can be linearised at any time point — the
/// interface the march-in-time solver and the Newton–Raphson baseline operate
/// on. [`crate::TunableHarvester`] is the principal implementation.
pub trait AnalogueSystem {
    /// Number of global state variables.
    fn state_count(&self) -> usize;

    /// Number of global nets (non-state / terminal variables).
    fn net_count(&self) -> usize;

    /// Names of the global state variables.
    fn state_names(&self) -> Vec<String>;

    /// Names of the global nets.
    fn net_names(&self) -> Vec<String>;

    /// Global linearisation (Eq. 2) at time `t`, state `x` and net values `y`.
    ///
    /// # Errors
    ///
    /// Implementations may report ill-posed configurations.
    fn linearise_global(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
    ) -> Result<GlobalLinearisation, CoreError>;
}

/// Placement bookkeeping for one block inside the assembled system.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockSlot {
    name: String,
    state_offset: usize,
    state_count: usize,
    constraint_offset: usize,
    constraint_count: usize,
    /// Local terminal index → global net index.
    terminal_nets: Vec<usize>,
}

/// Builder that wires blocks together net by net.
#[derive(Debug, Default)]
pub struct AssemblyBuilder {
    slots: Vec<BlockSlot>,
    net_names: Vec<String>,
    state_names: Vec<String>,
    state_count: usize,
    constraint_count: usize,
}

impl AssemblyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `block`, connecting its terminals (in declaration order) to the
    /// global nets named in `nets`. Nets are created on first use; two blocks
    /// naming the same net share the corresponding terminal variable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the net list length does
    /// not match the block's terminal count.
    pub fn add_block(
        &mut self,
        block: &dyn StateSpaceBlock,
        nets: &[&str],
    ) -> Result<usize, CoreError> {
        if nets.len() != block.terminal_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "block {} has {} terminals but {} nets were supplied",
                block.name(),
                block.terminal_count(),
                nets.len()
            )));
        }
        let mut terminal_nets = Vec::with_capacity(nets.len());
        for net in nets {
            let index = match self.net_names.iter().position(|existing| existing == net) {
                Some(index) => index,
                None => {
                    self.net_names.push((*net).to_string());
                    self.net_names.len() - 1
                }
            };
            terminal_nets.push(index);
        }
        let slot = BlockSlot {
            name: block.name().to_string(),
            state_offset: self.state_count,
            state_count: block.state_count(),
            constraint_offset: self.constraint_count,
            constraint_count: block.constraint_count(),
            terminal_nets,
        };
        for state_name in block.state_names() {
            self.state_names.push(format!("{}.{}", block.name(), state_name));
        }
        self.state_count += block.state_count();
        self.constraint_count += block.constraint_count();
        self.slots.push(slot);
        Ok(self.slots.len() - 1)
    }

    /// Finalises the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllPosedSystem`] if the total constraint count does
    /// not equal the number of nets (the algebraic system of Eq. 4 would not be
    /// square) or no blocks were added.
    pub fn build(self) -> Result<Assembly, CoreError> {
        if self.slots.is_empty() {
            return Err(CoreError::IllPosedSystem("no blocks were added".to_string()));
        }
        if self.constraint_count != self.net_names.len() {
            return Err(CoreError::IllPosedSystem(format!(
                "{} algebraic constraints for {} nets: the terminal-variable system is not square",
                self.constraint_count,
                self.net_names.len()
            )));
        }
        Ok(Assembly {
            slots: self.slots,
            net_names: self.net_names,
            state_names: self.state_names,
            state_count: self.state_count,
            constraint_count: self.constraint_count,
        })
    }
}

/// The immutable wiring plan of the assembled system.
#[derive(Debug, Clone)]
pub struct Assembly {
    slots: Vec<BlockSlot>,
    net_names: Vec<String>,
    state_names: Vec<String>,
    state_count: usize,
    constraint_count: usize,
}

impl Assembly {
    /// Starts building an assembly.
    pub fn builder() -> AssemblyBuilder {
        AssemblyBuilder::new()
    }

    /// Total number of global state variables.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of global nets (terminal variables).
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of blocks in the assembly.
    pub fn block_count(&self) -> usize {
        self.slots.len()
    }

    /// Names of the global state variables (`block.state`).
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Names of the global nets.
    pub fn net_names(&self) -> &[String] {
        &self.net_names
    }

    /// Index of the net with the given name.
    pub fn net_index(&self, name: &str) -> Option<usize> {
        self.net_names.iter().position(|n| n == name)
    }

    /// Offset of block `block_index`'s states within the global state vector.
    ///
    /// # Panics
    ///
    /// Panics if `block_index` is out of range.
    pub fn state_offset(&self, block_index: usize) -> usize {
        self.slots[block_index].state_offset
    }

    /// Builds the global initial state by concatenating the blocks' initial
    /// states (in registration order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the provided blocks do not
    /// match the registered slots.
    pub fn initial_state(&self, blocks: &[&dyn StateSpaceBlock]) -> Result<DVector, CoreError> {
        self.check_blocks(blocks)?;
        let mut x = DVector::zeros(self.state_count);
        for (slot, block) in self.slots.iter().zip(blocks) {
            x.set_segment(slot.state_offset, &block.initial_state());
        }
        Ok(x)
    }

    fn check_blocks(&self, blocks: &[&dyn StateSpaceBlock]) -> Result<(), CoreError> {
        if blocks.len() != self.slots.len() {
            return Err(CoreError::InvalidConfiguration(format!(
                "assembly has {} blocks but {} were provided",
                self.slots.len(),
                blocks.len()
            )));
        }
        for (slot, block) in self.slots.iter().zip(blocks) {
            if slot.state_count != block.state_count()
                || slot.terminal_nets.len() != block.terminal_count()
                || slot.constraint_count != block.constraint_count()
            {
                return Err(CoreError::InvalidConfiguration(format!(
                    "block {} no longer matches its registered dimensions",
                    block.name()
                )));
            }
        }
        Ok(())
    }

    /// Assembles the global linearisation (Eq. 2) at time `t`, global state `x`
    /// and net values `y`, by calling every block's local linearisation and
    /// scattering it into the global matrices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] if the blocks or vector
    /// dimensions do not match the assembly.
    pub fn linearise_global(
        &self,
        blocks: &[&dyn StateSpaceBlock],
        t: f64,
        x: &DVector,
        y: &DVector,
    ) -> Result<GlobalLinearisation, CoreError> {
        self.check_blocks(blocks)?;
        if x.len() != self.state_count || y.len() != self.net_count() {
            return Err(CoreError::InvalidConfiguration(format!(
                "state/net vector sizes ({}, {}) do not match the assembly ({}, {})",
                x.len(),
                y.len(),
                self.state_count,
                self.net_count()
            )));
        }
        let n = self.state_count;
        let m = self.net_count();
        let k = self.constraint_count;
        let mut jxx = DMatrix::zeros(n, n);
        let mut jxy = DMatrix::zeros(n, m);
        let mut ex = DVector::zeros(n);
        let mut jyx = DMatrix::zeros(k, n);
        let mut jyy = DMatrix::zeros(k, m);
        let mut gy = DVector::zeros(k);

        for (slot, block) in self.slots.iter().zip(blocks) {
            let local_x = x.segment(slot.state_offset, slot.state_count);
            let local_y = DVector::from_fn(slot.terminal_nets.len(), |i| y[slot.terminal_nets[i]]);
            let lin = block.linearise(t, &local_x, &local_y);
            debug_assert!(
                lin.is_consistent(),
                "block {} returned inconsistent matrices",
                slot.name
            );

            // State equations.
            jxx.add_block(slot.state_offset, slot.state_offset, &lin.a);
            for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                for row in 0..slot.state_count {
                    jxy.add_to(slot.state_offset + row, net, lin.b[(row, local_terminal)]);
                }
            }
            for row in 0..slot.state_count {
                ex[slot.state_offset + row] += lin.e[row];
            }

            // Algebraic constraints.
            for row in 0..slot.constraint_count {
                let global_row = slot.constraint_offset + row;
                for col in 0..slot.state_count {
                    jyx.add_to(global_row, slot.state_offset + col, lin.c[(row, col)]);
                }
                for (local_terminal, &net) in slot.terminal_nets.iter().enumerate() {
                    jyy.add_to(global_row, net, lin.d[(row, local_terminal)]);
                }
                gy[global_row] += lin.g[row];
            }
        }

        Ok(GlobalLinearisation { jxx, jxy, ex, jyx, jyy, gy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvsim_blocks::block::LocalLinearisation;

    /// A one-state RC block: ẋ = (V_port − x)/(R·C), constraint I_port = (V_port − x)/R.
    struct RcBlock {
        name: String,
        r: f64,
        c: f64,
    }

    impl StateSpaceBlock for RcBlock {
        fn name(&self) -> &str {
            &self.name
        }
        fn state_count(&self) -> usize {
            1
        }
        fn terminal_count(&self) -> usize {
            2
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            vec!["v_cap".to_string()]
        }
        fn terminal_names(&self) -> Vec<String> {
            vec!["V".to_string(), "I".to_string()]
        }
        fn initial_state(&self) -> DVector {
            DVector::zeros(1)
        }
        fn linearise(&self, _t: f64, _x: &DVector, _y: &DVector) -> LocalLinearisation {
            LocalLinearisation {
                a: DMatrix::from_rows(&[&[-1.0 / (self.r * self.c)]]).unwrap(),
                b: DMatrix::from_rows(&[&[1.0 / (self.r * self.c), 0.0]]).unwrap(),
                e: DVector::zeros(1),
                // I - (V - x)/R = 0
                c: DMatrix::from_rows(&[&[1.0 / self.r]]).unwrap(),
                d: DMatrix::from_rows(&[&[-1.0 / self.r, 1.0]]).unwrap(),
                g: DVector::zeros(1),
            }
        }
    }

    /// A source block: fixes its port voltage to a constant and contributes the
    /// constraint V_port − v0 = 0.
    struct SourceBlock {
        v0: f64,
    }

    impl StateSpaceBlock for SourceBlock {
        fn name(&self) -> &str {
            "source"
        }
        fn state_count(&self) -> usize {
            0
        }
        fn terminal_count(&self) -> usize {
            2
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn state_names(&self) -> Vec<String> {
            Vec::new()
        }
        fn terminal_names(&self) -> Vec<String> {
            vec!["V".to_string(), "I".to_string()]
        }
        fn initial_state(&self) -> DVector {
            DVector::zeros(0)
        }
        fn linearise(&self, _t: f64, _x: &DVector, _y: &DVector) -> LocalLinearisation {
            LocalLinearisation {
                a: DMatrix::zeros(0, 0),
                b: DMatrix::zeros(0, 2),
                e: DVector::zeros(0),
                c: DMatrix::zeros(1, 0),
                d: DMatrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
                g: DVector::from_slice(&[-self.v0]),
            }
        }
    }

    fn rc_assembly() -> (Assembly, SourceBlock, RcBlock) {
        let source = SourceBlock { v0: 5.0 };
        let rc = RcBlock { name: "rc".to_string(), r: 1000.0, c: 1e-6 };
        let mut builder = Assembly::builder();
        builder.add_block(&source, &["vin", "iin"]).unwrap();
        builder.add_block(&rc, &["vin", "iin"]).unwrap();
        let assembly = builder.build().unwrap();
        (assembly, source, rc)
    }

    #[test]
    fn builder_tracks_dimensions_and_names() {
        let (assembly, ..) = rc_assembly();
        assert_eq!(assembly.state_count(), 1);
        assert_eq!(assembly.net_count(), 2);
        assert_eq!(assembly.block_count(), 2);
        assert_eq!(assembly.net_index("vin"), Some(0));
        assert_eq!(assembly.net_index("iin"), Some(1));
        assert_eq!(assembly.net_index("missing"), None);
        assert_eq!(assembly.state_names(), &["rc.v_cap".to_string()]);
        assert_eq!(assembly.state_offset(1), 0);
    }

    #[test]
    fn builder_rejects_bad_wiring() {
        let source = SourceBlock { v0: 1.0 };
        let mut builder = Assembly::builder();
        assert!(builder.add_block(&source, &["only-one"]).is_err());
        // Constraint/net mismatch: one block with 2 nets but only 1 constraint.
        let mut builder = Assembly::builder();
        builder.add_block(&source, &["a", "b"]).unwrap();
        assert!(builder.build().is_err());
        // Empty assembly.
        assert!(Assembly::builder().build().is_err());
    }

    #[test]
    fn terminal_elimination_solves_the_rc_divider() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let x = assembly.initial_state(&blocks).unwrap();
        let y0 = DVector::zeros(2);
        let lin = assembly.linearise_global(&blocks, 0.0, &x, &y0).unwrap();
        // Solve Eq. 4: the port voltage must equal the source value and the
        // current must be (V - x)/R = 5 mA at x = 0.
        let y = lin.solve_terminals(&x).unwrap();
        let v = y[assembly.net_index("vin").unwrap()];
        let i = y[assembly.net_index("iin").unwrap()];
        assert!((v - 5.0).abs() < 1e-9);
        assert!((i - 5.0e-3).abs() < 1e-9);
        // State derivative: dx/dt = (5 - 0)/(RC) = 5000 V/s.
        let dx = lin.state_derivative(&x, &y);
        assert!((dx[0] - 5000.0).abs() < 1e-6);
        // Total-step matrix equals -1/(RC) for this single-state system.
        let a = lin.total_step_matrix().unwrap();
        assert!((a[(0, 0)] + 1000.0).abs() < 1e-6);
    }

    #[test]
    fn jacobian_change_monitor() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let x = assembly.initial_state(&blocks).unwrap();
        let y = DVector::zeros(2);
        let lin1 = assembly.linearise_global(&blocks, 0.0, &x, &y).unwrap();
        let lin2 = assembly.linearise_global(&blocks, 1.0, &x, &y).unwrap();
        // The RC system is linear and time-invariant: no Jacobian change at all.
        assert!(lin1.jacobian_change(&lin2).unwrap() < 1e-15);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let (assembly, source, rc) = rc_assembly();
        let blocks: [&dyn StateSpaceBlock; 2] = [&source, &rc];
        let wrong_x = DVector::zeros(3);
        let y = DVector::zeros(2);
        assert!(assembly.linearise_global(&blocks, 0.0, &wrong_x, &y).is_err());
        let x = DVector::zeros(1);
        let wrong_y = DVector::zeros(1);
        assert!(assembly.linearise_global(&blocks, 0.0, &x, &wrong_y).is_err());
        let only_one: [&dyn StateSpaceBlock; 1] = [&source];
        assert!(assembly.initial_state(&only_one).is_err());
    }

    #[test]
    fn singular_terminal_system_is_reported() {
        // Two source blocks fighting over the same net make Jyy singular
        // (both constraints involve only the voltage net).
        let s1 = SourceBlock { v0: 1.0 };
        let s2 = SourceBlock { v0: 2.0 };
        let mut builder = Assembly::builder();
        builder.add_block(&s1, &["v", "i"]).unwrap();
        builder.add_block(&s2, &["v", "i"]).unwrap();
        let assembly = builder.build().unwrap();
        let blocks: [&dyn StateSpaceBlock; 2] = [&s1, &s2];
        let x = assembly.initial_state(&blocks).unwrap();
        let y = DVector::zeros(2);
        let lin = assembly.linearise_global(&blocks, 0.0, &x, &y).unwrap();
        assert!(matches!(lin.solve_terminals(&x), Err(CoreError::IllPosedSystem(_))));
    }
}
