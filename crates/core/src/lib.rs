//! # harvsim-core
//!
//! The linearised state-space simulation engine of
//! [Wang et al., *"Accelerated simulation of tunable vibration energy
//! harvesting systems using a linearised state-space technique"*, DATE 2011]
//! — the paper's primary contribution — together with the complete tunable
//! harvester system model, the mixed analogue/digital co-simulation, the
//! evaluation scenarios and the Newton–Raphson baseline it is compared against.
//!
//! ## How the technique works
//!
//! 1. The system is divided into component blocks (microgenerator, voltage
//!    multiplier, supercapacitor + load) described by local state equations and
//!    terminal variables (`harvsim-blocks`).
//! 2. [`assembly`] stacks the per-block linearisations into the global system
//!    of the paper's Eq. 2 and keeps track of which local terminals share a
//!    global net.
//! 3. At every time point the non-state (terminal) variables are eliminated by
//!    solving the algebraic part `Jyy·y = −(Jyx·x + g)` (Eq. 4).
//! 4. [`solver`] advances the state variables with the explicit, variable-step
//!    Adams–Bashforth formula (Eq. 5) at the order an order/step governor
//!    selects per step, limiting the step so the point total-step matrix
//!    satisfies the stability condition of Eq. 7 through exact per-eigenvalue
//!    region scans for every order 1–4, and monitoring the local
//!    linearisation error through Jacobian changes (Eq. 3).
//! 5. [`mixed`] interleaves those analogue segments with the event-driven
//!    digital kernel running the microcontroller process of Fig. 7, exchanging
//!    load-mode and retuning commands at synchronisation points.
//! 6. [`baseline`] solves the *same* assembled nonlinear model the way the
//!    commercial simulators in the paper's Tables I–II do — implicit
//!    integration with a Newton–Raphson solve of the full analogue system at
//!    every time step — so [`comparison`] can regenerate the speed-up and
//!    accuracy numbers.
//!
//! ## Quick start
//!
//! The streaming [`session`] facade is the primary entry point: a
//! [`Simulation`] builder produces a resumable [`Session`] observed by typed
//! [`probe`]s.
//!
//! ```
//! use harvsim_core::{EnvelopeProbe, Simulation};
//!
//! # fn main() -> Result<(), harvsim_core::CoreError> {
//! // A very short Scenario-1 style run (70 -> 71 Hz retune).
//! let mut session = Simulation::scenario1()
//!     .duration(0.25)                // keep the doc test fast
//!     .frequency_step_at(0.1)
//!     .start()?;
//! let vc = session.harvester().storage_voltage_net();
//! let store = session.add_probe(EnvelopeProbe::terminal(vc));
//! session.run_to_end()?;
//! assert!(session.report().engine_stats.state_space.steps > 10);
//! assert!(session.probe::<EnvelopeProbe>(store).expect("typed").samples() > 10);
//! # Ok(())
//! # }
//! ```
//!
//! The run-to-completion API ([`ScenarioConfig::run`]) remains available as a
//! shim over sessions, returning dense trajectories bit-identical to the
//! pre-session engines.
//!
//! [Wang et al.]: https://doi.org/10.1109/DATE.2011.5763084

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style negated comparisons are the validation idiom throughout
// this workspace: unlike `x <= 0.0` they also reject NaN, which is exactly
// what the parameter checks need. Clippy's suggested `partial_cmp` rewrite
// obscures that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod assembly;
pub mod baseline;
pub mod checkpoint;
pub mod comparison;
mod error;
pub mod explore;
pub mod fault;
pub mod harvester;
pub mod measurement;
pub mod mixed;
pub mod probe;
pub mod protocol;
pub mod scenario;
pub mod server;
pub mod service;
pub mod session;
pub mod solver;
pub mod store;

pub use assembly::{
    AnalogueSystem, Assembly, AssemblyBuilder, GlobalLinearisation, StampReport,
    TerminalFactorisation,
};
pub use baseline::{BaselineOptions, NewtonRaphsonBaseline};
pub use checkpoint::{fnv1a64, CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use comparison::{ComparisonReport, SpeedComparison};
pub use error::CoreError;
pub use explore::{
    ExploreReport, Explorer, GridSpec, ObjectiveSummary, PointMetrics, PointOutcome, PointRecord,
};
pub use fault::{Fault, FaultKind, FaultPlan, FaultSite};
pub use harvester::TunableHarvester;
pub use measurement::{PowerReport, WaveformComparison};
pub use mixed::{MixedSignalResult, MixedSignalSimulation, SimulationEngine};
pub use probe::{
    DigitalEvent, EnvelopeProbe, PowerProbe, Probe, StepHistogramProbe, WaveformProbe,
};
pub use protocol::{
    Client, Command, FrameReader, FrameWriter, ProtocolError, Response, RetryPolicy, ServerStats,
    StatusInfo, SubmitSpec, WireError, WireState,
};
pub use scenario::{run_batch, ScenarioConfig, ScenarioResult, SweepGrid, SweepParameter};
pub use server::{DrainReport, Server, ServerOptions};
pub use service::{
    ClassReport, JobClass, JobOutcome, JobRequest, ServiceError, ServiceOptions, ServiceReport,
    SessionService,
};
pub use session::{ProbeId, Session, SessionReport, SessionStatus, Simulation};
pub use solver::{SolveResult, SolverOptions, SolverStats, StateSpaceSolver};
pub use store::{RecoveryReport, SessionStore, StoreError, StoreOptions};

/// Convenient result alias used across the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
