//! Regression tests for the zero-allocation hot path: the workspace-reusing
//! solver entry point must be *bit-identical* to the fresh-workspace one on
//! the full harvester model, and the cached terminal factorisation must make
//! the engine's cost asymmetry observable through [`harvsim::core::solver`]'s
//! statistics.

use harvsim::core::solver::{SolverOptions, SolverWorkspace, StateSpaceSolver};
use harvsim::ode::Trajectory;
use harvsim::{HarvesterParameters, ScenarioConfig, TunableHarvester};

fn harvester() -> TunableHarvester {
    TunableHarvester::with_constant_excitation(HarvesterParameters::practical_device(), 70.0)
        .expect("harvester builds")
}

/// `solve` (fresh workspace per call) and `solve_into_with` (one workspace
/// reused across consecutive segments) must produce bit-identical trajectories
/// on the full `TunableHarvester`: the workspace changes where temporaries
/// live, never their values.
#[test]
fn workspace_path_is_bit_identical_on_the_full_harvester() {
    let h = harvester();
    let x0 = h.initial_state(2.5).expect("initial state");
    let options = SolverOptions { record_interval: 1e-3, ..Default::default() };
    let solver = StateSpaceSolver::new(options).expect("solver");

    // Reference: two consecutive segments through fresh workspaces.
    let first = solver.solve(&h, 0.0, 0.05, &x0).expect("first segment");
    let second = solver.solve(&h, 0.05, 0.1, &first.final_state).expect("second segment");

    // Same two segments through one reused workspace.
    let mut workspace = SolverWorkspace::new();
    let mut states = Trajectory::new();
    let mut terminals = Trajectory::new();
    let (mid, stats_a) = solver
        .solve_into_with(&h, 0.0, 0.05, &x0, &mut states, &mut terminals, &mut workspace)
        .expect("first segment (workspace)");
    let (end, stats_b) = solver
        .solve_into_with(&h, 0.05, 0.1, &mid, &mut states, &mut terminals, &mut workspace)
        .expect("second segment (workspace)");

    assert_eq!(mid, first.final_state, "segment-1 final state must match bit for bit");
    assert_eq!(end, second.final_state, "segment-2 final state must match bit for bit");
    assert_eq!(stats_a.steps, first.stats.steps);
    assert_eq!(stats_b.steps, second.stats.steps);
    assert_eq!(states.len(), first.states.len() + second.states.len());
    for (i, reference) in first.states.states().iter().chain(second.states.states()).enumerate() {
        assert_eq!(&states.states()[i], reference, "state sample {i}");
    }
    for (i, reference) in
        first.terminals.states().iter().chain(second.terminals.states()).enumerate()
    {
        assert_eq!(&terminals.states()[i], reference, "terminal sample {i}");
    }
}

/// On the assembled harvester the terminal sub-matrix `Jyy` is constant
/// between load-mode switches, so a whole analogue segment needs exactly one
/// LU factorisation while every step's Eq. 4 elimination hits the cache —
/// the asymmetry behind the paper's Table II, now visible in the statistics.
#[test]
fn harvester_steps_hit_the_cached_terminal_factorisation() {
    let h = harvester();
    let x0 = h.initial_state(2.5).expect("initial state");
    let solver = StateSpaceSolver::new(SolverOptions::default()).expect("solver");
    let result = solver.solve(&h, 0.0, 0.1, &x0).expect("segment");
    assert!(result.stats.steps > 100, "steps {}", result.stats.steps);
    assert_eq!(
        result.stats.factorisations, 1,
        "constant Jyy: one factorisation per segment, not one per step"
    );
    assert_eq!(result.stats.cached_solves, result.stats.steps);
    // The stability limit refreshes with relinearisations, orders of
    // magnitude less often than the step count.
    assert!(result.stats.stability_updates < result.stats.steps / 10);
    // Every accepted step is booked under exactly one Adams–Bashforth order,
    // and the stiff exponential lane is accounted separately (it rides along
    // on the same steps rather than double-booking the histogram).
    assert_eq!(result.stats.steps_by_order.iter().sum::<usize>(), result.stats.steps);
    assert_eq!(
        result.stats.stiff_exact_steps, result.stats.steps,
        "the harvester declares stiff interface states, so every partitioned step runs them exact"
    );
    // With the stiff interface poles priced out of the stability plan the
    // governor is free to ride the high-order regions: order 4 dominates the
    // partitioned march (DESIGN.md §7).
    assert!(
        result.stats.steps_by_order[3] > result.stats.steps / 2,
        "steps_by_order {:?}",
        result.stats.steps_by_order
    );
    // The constant-contract split skips the microgenerator's stamp on every
    // relinearisation (all steps but each segment's opening full stamp).
    assert!(
        result.stats.constant_stamps_skipped >= result.stats.steps - 1,
        "constant stamps skipped {} of {} steps",
        result.stats.constant_stamps_skipped,
        result.stats.steps
    );
}

/// The PR 3 behaviour is preserved behind `imex: false`: the real
/// rail/storage interface poles bind the march, so the governor rides the
/// order-2 region (widest real-axis interval above order 1) through the
/// steady state of the assembled harvester (DESIGN.md §6.2).
#[test]
fn imex_off_governor_still_rides_ab2_on_the_interface_poles() {
    let h = harvester();
    let x0 = h.initial_state(2.5).expect("initial state");
    let solver =
        StateSpaceSolver::new(SolverOptions { imex: false, ..Default::default() }).expect("solver");
    let result = solver.solve(&h, 0.0, 0.1, &x0).expect("segment");
    assert_eq!(result.stats.stiff_exact_steps, 0, "imex off never runs the exponential lane");
    assert!(
        result.stats.steps_by_order[1] > result.stats.steps / 2,
        "steps_by_order {:?}",
        result.stats.steps_by_order
    );
}

/// The closed-loop scenario (digital controller switching load modes) still
/// only refactorises when `Jyy` actually changes: factorisations stay within
/// a small multiple of the number of analogue segments.
#[test]
fn closed_loop_factorisations_scale_with_segments_not_steps() {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.4;
    scenario.frequency_step_time_s = 0.1;
    let run = scenario.run().expect("scenario runs");
    let stats = run.result.engine_stats.state_space;
    assert!(stats.steps > 500, "steps {}", stats.steps);
    assert!(
        stats.factorisations < stats.steps / 50,
        "factorisations {} vs steps {}",
        stats.factorisations,
        stats.steps
    );
    assert_eq!(stats.cached_solves + stats.factorisations, stats.linearisations);
}
