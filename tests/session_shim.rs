//! Acceptance pin for the deprecated run-to-completion shims: driving
//! `ScenarioConfig::run()` (which now routes scenario → mixed shim → session
//! → resumable march) must produce **bit-identical** trajectories and work
//! statistics to the direct pre-session mixed-signal loop — reimplemented
//! here exactly as PR 4's driver had it: one kernel, one solver workspace,
//! `solve_into_with` per analogue segment, control actions applied between
//! segments.
//!
//! Plus the streaming-memory half of the acceptance criteria: a sweep point
//! run with streaming probes only allocates no dense trajectory — its probe
//! footprint is a few hundred bytes, independent of the simulated span, while
//! the dense shim's grows with it.

use harvsim::blocks::{ControllerConfig, HarvesterEnvironment, LoadMode, MicroController};
use harvsim::core::measurement;
use harvsim::core::solver::SolverWorkspace;
use harvsim::core::StateSpaceSolver;
use harvsim::digital::{Kernel, SimTime};
use harvsim::linalg::DVector;
use harvsim::ode::Trajectory;
use harvsim::{
    EnvelopeProbe, PowerProbe, ScenarioConfig, Simulation, SimulationEngine, StepHistogramProbe,
    TunableHarvester,
};

/// The PR 4 control mailbox, reproduced verbatim for the reference loop.
#[derive(Debug, Clone, Default)]
struct Mailbox {
    supercap_voltage: f64,
    ambient_hz: f64,
    resonant_hz: f64,
    requested_load_mode: Option<LoadMode>,
    requested_resonance_hz: Option<f64>,
}

impl HarvesterEnvironment for Mailbox {
    fn supercapacitor_voltage(&self) -> f64 {
        self.supercap_voltage
    }
    fn ambient_frequency_hz(&self) -> f64 {
        self.ambient_hz
    }
    fn resonant_frequency_hz(&self) -> f64 {
        self.requested_resonance_hz.unwrap_or(self.resonant_hz)
    }
    fn set_load_mode(&mut self, mode: LoadMode) {
        self.requested_load_mode = Some(mode);
    }
    fn set_resonant_frequency(&mut self, frequency_hz: f64) {
        self.requested_resonance_hz = Some(frequency_hz);
    }
}

/// What the direct loop returns: `(states, terminals, final_state,
/// accepted_steps, control_events)`.
type DirectRunOutput = (Trajectory, Trajectory, DVector, usize, Vec<(f64, LoadMode, f64)>);

/// PR 4's mixed-signal driver: run-to-completion, dense trajectories, one
/// reused workspace, digital events processed at segment boundaries.
fn direct_mixed_loop(
    harvester: &mut TunableHarvester,
    controller_config: ControllerConfig,
    solver: &StateSpaceSolver,
    duration_s: f64,
    initial_supercap_voltage: f64,
) -> DirectRunOutput {
    let controller =
        MicroController::new(controller_config, harvester.resonant_frequency_hz()).unwrap();
    let mut kernel: Kernel<Mailbox> = Kernel::new();
    kernel.spawn_at(SimTime::from_secs_f64(controller_config.watchdog_period_s), controller);

    let mut states = Trajectory::new();
    let mut terminals = Trajectory::new();
    let mut workspace = SolverWorkspace::new();
    let mut control_events = Vec::new();
    let mut steps = 0usize;

    let mut t = 0.0_f64;
    let mut x = harvester.initial_state(initial_supercap_voltage).unwrap();

    while t < duration_s - 1e-9 {
        let next_event = kernel
            .next_event_time()
            .map(|time| time.as_secs_f64())
            .unwrap_or(duration_s)
            .min(duration_s);
        let segment_end = next_event.max(t + 1e-9);

        if segment_end > t + 1e-12 {
            let (x_end, stats) = solver
                .solve_into_with(
                    &*harvester,
                    t,
                    segment_end,
                    &x,
                    &mut states,
                    &mut terminals,
                    &mut workspace,
                )
                .expect("segment integrates");
            x = x_end;
            steps += stats.steps;
            t = segment_end;
        }

        if kernel.next_event_time().map(|time| time.as_secs_f64() <= t + 1e-12).unwrap_or(false) {
            let mut mailbox = Mailbox {
                supercap_voltage: harvester.supercapacitor_voltage(&x),
                ambient_hz: harvester.ambient_frequency_hz(t),
                resonant_hz: harvester.resonant_frequency_hz(),
                requested_load_mode: None,
                requested_resonance_hz: None,
            };
            kernel.run_until(SimTime::from_secs_f64(t), &mut mailbox).unwrap();
            let mut acted = false;
            if let Some(mode) = mailbox.requested_load_mode {
                harvester.set_load_mode(mode);
                acted = true;
            }
            if let Some(frequency) = mailbox.requested_resonance_hz {
                harvester.set_resonant_frequency(frequency);
                acted = true;
            }
            if acted {
                control_events.push((t, harvester.load_mode(), harvester.resonant_frequency_hz()));
            }
        }
    }

    (states, terminals, x, steps, control_events)
}

fn busy_scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.9;
    scenario.frequency_step_time_s = 0.1;
    scenario.controller.watchdog_period_s = 0.25;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.05;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.02;
    scenario
}

/// The headline pin: shim output ≡ PR 4 direct loop, bit for bit.
#[test]
fn scenario_run_through_the_shim_matches_the_direct_pr4_loop() {
    let scenario = busy_scenario();
    let shim = scenario.run().expect("shim run");

    let solver_options = match scenario.engine {
        SimulationEngine::StateSpace(options) => options,
        SimulationEngine::NewtonRaphson(_) => unreachable!("scenario1 defaults to state-space"),
    };
    let solver = StateSpaceSolver::new(solver_options).expect("solver");
    let mut harvester = scenario.build_harvester().expect("harvester");
    let (states, terminals, final_state, steps, control_events) = direct_mixed_loop(
        &mut harvester,
        scenario.controller,
        &solver,
        scenario.duration_s,
        scenario.initial_supercap_voltage,
    );

    assert_eq!(shim.final_state, final_state, "final state must match bit for bit");
    assert_eq!(shim.result.engine_stats.state_space.steps, steps, "same accepted steps");
    assert_eq!(shim.states().len(), states.len(), "same recorded grid");
    assert_eq!(shim.states().times(), states.times());
    for (i, (sample, expected)) in shim.states().states().iter().zip(states.states()).enumerate() {
        assert_eq!(sample, expected, "state sample {i}");
    }
    for (i, (sample, expected)) in
        shim.terminals().states().iter().zip(terminals.states()).enumerate()
    {
        assert_eq!(sample, expected, "terminal sample {i}");
    }
    // Identical control trajectory (time, mode, frequency per action).
    assert_eq!(shim.result.control_events.len(), control_events.len());
    for (event, (time, mode, hz)) in shim.result.control_events.iter().zip(&control_events) {
        assert_eq!(event.time_s, *time);
        assert_eq!(event.load_mode, *mode);
        assert_eq!(event.resonant_frequency_hz, *hz);
    }
    // And the retuned harvester ends in the same place.
    assert_eq!(shim.harvester.resonant_frequency_hz(), harvester.resonant_frequency_hz());
    assert_eq!(shim.harvester.load_mode(), harvester.load_mode());
}

/// Streaming-memory acceptance: a sweep point observed only by streaming
/// probes retains a constant few hundred bytes regardless of the simulated
/// span, while the dense shim's footprint grows with it — no dense
/// `Trajectory` exists anywhere on the streaming path.
#[test]
fn streaming_sweep_points_never_materialise_dense_trajectories() {
    let streaming_peak = |duration: f64| {
        let mut scenario = busy_scenario();
        scenario.duration_s = duration;
        let mut session = Simulation::from_config(scenario).start().expect("session");
        let vc = session.harvester().storage_voltage_net();
        session.add_probe(EnvelopeProbe::terminal(vc));
        session.add_probe(StepHistogramProbe::new());
        session.run_to_end().expect("runs");
        session.report().peak_probe_bytes
    };
    let short = streaming_peak(0.3);
    let long = streaming_peak(0.9);
    assert_eq!(short, long, "streaming probe memory must be span-independent");
    assert!(short < 4096, "streaming probes stay in the hundreds of bytes: {short}");

    // The dense shim, by contrast, retains O(recorded samples).
    let mut scenario = busy_scenario();
    scenario.duration_s = 0.9;
    let dense = scenario.run().expect("dense shim");
    assert!(
        dense.result.peak_probe_bytes > 10 * long,
        "dense capture {} B should dwarf streaming {} B",
        dense.result.peak_probe_bytes,
        long
    );
}

/// The perf-gate criterion "passes with probes attached" in microcosm:
/// attaching streaming probes must not change the computed trajectory at all
/// (observation is read-only), so the probed session's final state matches
/// the unobserved shim bit for bit.
#[test]
fn attached_probes_do_not_perturb_the_solution() {
    let scenario = busy_scenario();
    let reference = scenario.run().expect("reference");
    let mut session = Simulation::from_config(scenario).start().expect("session");
    let vc = session.harvester().storage_voltage_net();
    session.add_probe(EnvelopeProbe::terminal(vc));
    session.add_probe(StepHistogramProbe::new());
    session.run_to_end().expect("runs");
    assert_eq!(session.report().final_state, reference.final_state);
    assert_eq!(
        session.report().engine_stats.state_space.steps,
        reference.result.engine_stats.state_space.steps
    );
}

/// The streaming `PowerProbe` subsumes the post-hoc `power_report` walk: on
/// the same run its windows agree with the dense-trajectory computation to
/// within the decimation error of the recorded grid (the probe integrates
/// every accepted step; `power_report` re-walks the 1 ms recording).
#[test]
fn streaming_power_probe_agrees_with_the_post_hoc_report() {
    let mut scenario = busy_scenario();
    scenario.duration_s = 1.2;
    scenario.frequency_step_time_s = 0.3;
    let dense = scenario.run().expect("dense shim");
    let reference = measurement::power_report(&dense).expect("post-hoc report");

    let mut session = Simulation::from_config(scenario.clone()).start().expect("session");
    let vm = session.harvester().generator_voltage_net();
    let im = session.harvester().generator_current_net();
    let probe = session.add_probe(PowerProbe::new(
        vm,
        im,
        scenario.frequency_step_time_s,
        scenario.duration_s,
    ));
    session.run_to_end().expect("runs");
    let streaming = session.probe::<PowerProbe>(probe).expect("typed probe").report();

    let close = |a: f64, b: f64| (a - b).abs() <= 0.15 * a.abs().max(b.abs()) + 1.0;
    assert!(
        close(streaming.rms_before_uw, reference.rms_before_uw),
        "before: streaming {} vs post-hoc {}",
        streaming.rms_before_uw,
        reference.rms_before_uw
    );
    assert!(
        close(streaming.rms_after_uw, reference.rms_after_uw),
        "after: streaming {} vs post-hoc {}",
        streaming.rms_after_uw,
        reference.rms_after_uw
    );
    assert!(
        close(streaming.dip_uw, reference.dip_uw),
        "dip: streaming {} vs post-hoc {}",
        streaming.dip_uw,
        reference.dip_uw
    );
}
