//! Integration tests for the partitioned stiff/non-stiff march (DESIGN.md §7):
//! the IMEX-off fallback must reproduce the classic (PR 3) unpartitioned
//! march bit for bit, the partition machinery must be inert for systems that
//! declare no stiff states, and the partitioned harvester march must agree
//! with the fine-stepped unpartitioned reference while taking far fewer
//! steps.

use harvsim::core::assembly::{AnalogueSystem, GlobalLinearisation, StampReport};
use harvsim::core::solver::{SolverOptions, StateSpaceSolver};
use harvsim::core::CoreError;
use harvsim::linalg::DVector;
use harvsim::{HarvesterParameters, ScenarioConfig, TunableHarvester};

fn harvester() -> TunableHarvester {
    TunableHarvester::with_constant_excitation(HarvesterParameters::practical_device(), 70.0)
        .expect("harvester builds")
}

/// Delegating wrapper that hides the blocks' stiff-state declarations, so the
/// solver runs its classic unpartitioned path even with `imex: true` — the
/// reference the IMEX-off regression below compares against.
struct HideStiff<'a>(&'a TunableHarvester);

impl AnalogueSystem for HideStiff<'_> {
    fn state_count(&self) -> usize {
        self.0.state_count()
    }
    fn net_count(&self) -> usize {
        self.0.net_count()
    }
    fn state_names(&self) -> Vec<String> {
        self.0.state_names()
    }
    fn net_names(&self) -> Vec<String> {
        self.0.net_names()
    }
    fn linearise_global(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
    ) -> Result<GlobalLinearisation, CoreError> {
        self.0.linearise_global(t, x, y)
    }
    fn linearise_global_into(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<(), CoreError> {
        self.0.linearise_global_into(t, x, y, out)
    }
    fn relinearise_global_into(
        &self,
        t: f64,
        x: &DVector,
        y: &DVector,
        out: &mut GlobalLinearisation,
    ) -> Result<StampReport, CoreError> {
        self.0.relinearise_global_into(t, x, y, out)
    }
    // Deliberately NOT forwarding `stiff_states`: the default (empty) hides
    // the partition.
}

/// The acceptance regression: `imex: false` must execute exactly the
/// arithmetic of the PR 3 unpartitioned march. The reference is the same
/// solver run with `imex: true` against a system that declares no stiff
/// states — by construction the pre-partition code path — and the two must be
/// bit-identical on the full harvester, trajectories included.
#[test]
fn imex_off_reproduces_the_unpartitioned_march_bit_identically() {
    let h = harvester();
    let x0 = h.initial_state(2.5).expect("initial state");
    let span = 0.08;

    let off =
        StateSpaceSolver::new(SolverOptions { imex: false, ..Default::default() }).expect("solver");
    let off_run = off.solve(&h, 0.0, span, &x0).expect("imex-off run");

    let on = StateSpaceSolver::new(SolverOptions::default()).expect("solver");
    let hidden = HideStiff(&h);
    let reference = on.solve(&hidden, 0.0, span, &x0).expect("unpartitioned reference");

    assert_eq!(off_run.final_state, reference.final_state, "final states must match bit for bit");
    assert_eq!(off_run.stats.steps, reference.stats.steps);
    assert_eq!(off_run.stats.steps_by_order, reference.stats.steps_by_order);
    assert_eq!(off_run.stats.stiff_exact_steps, 0);
    assert_eq!(reference.stats.stiff_exact_steps, 0);
    assert_eq!(off_run.states.len(), reference.states.len());
    for (sample, expected) in off_run.states.states().iter().zip(reference.states.states()) {
        assert_eq!(sample, expected, "trajectory samples must match bit for bit");
    }
    for (sample, expected) in off_run.terminals.states().iter().zip(reference.terminals.states()) {
        assert_eq!(sample, expected, "terminal samples must match bit for bit");
    }
}

/// The partitioned march must stay close to the unpartitioned reference —
/// same physics, different integrator — while needing far fewer steps,
/// because the stiff interface poles no longer price the stability limit.
#[test]
fn partitioned_march_agrees_with_the_unpartitioned_reference_and_takes_fewer_steps() {
    let h = harvester();
    let x0 = h.initial_state(2.5).expect("initial state");
    let span = 0.1;

    let on = StateSpaceSolver::new(SolverOptions::default()).expect("solver");
    let off =
        StateSpaceSolver::new(SolverOptions { imex: false, ..Default::default() }).expect("solver");
    let partitioned = on.solve(&h, 0.0, span, &x0).expect("partitioned run");
    let reference = off.solve(&h, 0.0, span, &x0).expect("reference run");

    // On this short start-up transient the margin is modest (the conduction
    // inrush dominates); full scenarios halve the step count (see
    // `closed_loop_scenario_retunes_identically_under_both_integrators`).
    assert!(
        partitioned.stats.steps * 10 < reference.stats.steps * 8,
        "partitioned {} steps vs unpartitioned {}",
        partitioned.stats.steps,
        reference.stats.steps
    );
    assert_eq!(partitioned.stats.stiff_exact_steps, partitioned.stats.steps);
    // Supercapacitor branch voltages (the Table II observable) agree to well
    // under the cross-engine acceptance band.
    let offset = h.supercap_state_offset();
    for branch in 0..3 {
        let a = partitioned.final_state[offset + branch];
        let b = reference.final_state[offset + branch];
        assert!((a - b).abs() < 2e-4, "branch {branch}: partitioned {a} vs reference {b}");
    }
    // The binding step-limit eigenvalue is no longer the −4.1e4 s⁻¹
    // storage/rail interface pole: either nothing constrains the step below
    // the cap, or a slower physical pole does.
    assert!(
        partitioned.stats.binding_pole[0].abs() < 3.0e4,
        "binding pole {:?} still looks like the interface pole",
        partitioned.stats.binding_pole
    );
    // The unpartitioned march, by contrast, is pinned by the interface pole.
    assert!(
        reference.stats.binding_pole[0].abs() > 3.0e4,
        "unpartitioned binding pole {:?}",
        reference.stats.binding_pole
    );
}

/// End-to-end closed-loop scenario check: the partitioned engine drives the
/// same control trajectory (retune to the new ambient frequency) as the
/// IMEX-off engine, and its stats record the partition's activity.
#[test]
fn closed_loop_scenario_retunes_identically_under_both_integrators() {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 1.6;
    scenario.frequency_step_time_s = 0.05;
    scenario.controller.watchdog_period_s = 0.4;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.05;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.02;

    let partitioned = scenario.run().expect("partitioned closed loop");
    let mut off = scenario.clone();
    off.engine = harvsim::core::SimulationEngine::StateSpace(SolverOptions {
        imex: false,
        ..Default::default()
    });
    let reference = off.run().expect("imex-off closed loop");

    let tuned = partitioned.harvester.resonant_frequency_hz();
    let tuned_reference = reference.harvester.resonant_frequency_hz();
    assert!((tuned - 71.0).abs() < 0.2, "partitioned retune ended at {tuned}");
    assert!((tuned - tuned_reference).abs() < 0.1, "engines disagree on the retune");
    let stats = partitioned.result.engine_stats.state_space;
    assert_eq!(stats.stiff_exact_steps, stats.steps);
    assert!(stats.constant_stamps_skipped > 0);
    assert!(stats.steps < reference.result.engine_stats.state_space.steps / 2);
}

/// A system that declares no stiff states leaves every partition counter at
/// zero and produces bit-identical results whether `imex` is on or off: the
/// machinery must be inert, not merely close.
#[test]
fn imex_flag_is_inert_for_systems_without_stiff_states() {
    let h = harvester();
    let hidden = HideStiff(&h);
    let x0 = h.initial_state(2.5).expect("initial state");

    let on = StateSpaceSolver::new(SolverOptions::default()).expect("solver");
    let off =
        StateSpaceSolver::new(SolverOptions { imex: false, ..Default::default() }).expect("solver");
    let a = on.solve(&hidden, 0.0, 0.05, &x0).expect("imex on, no stiff states");
    let b = off.solve(&hidden, 0.0, 0.05, &x0).expect("imex off");

    assert_eq!(a.final_state, b.final_state);
    assert_eq!(a.stats.steps, b.stats.steps);
    assert_eq!(a.stats.stiff_exact_steps, 0);
    assert_eq!(b.stats.stiff_exact_steps, 0);
}
