//! The wire-protocol fuzz battery: arbitrary bytes in, typed
//! [`ProtocolError`]s out — never a panic, never a leaked session.
//!
//! Three layers are attacked: the pure parser (`parse_command` /
//! `Response::parse`), the framing layer ([`FrameReader`] under truncation,
//! interleaved partial writes and garbage), and the live [`Server`]
//! connection handler under injected wire faults ([`FaultSite::WireRead`] /
//! [`FaultSite::WireWrite`]) — after the storm, the server's books must
//! still balance and every armed fault budget must be spent
//! ([`FaultPlan::drained`]).

#![cfg(unix)]

use std::io::{Cursor, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harvsim::core::protocol::parse_command;
use harvsim::core::store::SessionStore;
use harvsim::{
    Client, Command, FaultPlan, FaultSite, FrameReader, JobClass, ProtocolError, Response,
    RetryPolicy, Server, ServerOptions, SubmitSpec, WireState,
};

/// The corpus of valid wire lines every mutation starts from.
fn corpus() -> Vec<String> {
    let mut spec = SubmitSpec::new("fuzz-seed");
    spec.class = JobClass::Interactive;
    spec.deadline_s = Some(1.5);
    spec.scenario = 2;
    spec.duration_s = Some(0.02);
    spec.step_at_s = Some(0.007);
    spec.initial_voltage = Some(2.75);
    vec![
        Command::Ping.to_line(),
        Command::Stats.to_line(),
        Command::Drain.to_line(),
        Command::Pause { id: "a".into() }.to_line(),
        Command::Resume { id: "fuzz-seed".into() }.to_line(),
        Command::Cancel { id: "x-1".into() }.to_line(),
        Command::Status { id: "想🦀".into() }.to_line(),
        Command::Bill { id: "b".into() }.to_line(),
        Command::Submit(spec).to_line(),
    ]
}

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "harvsim-fuzz-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &PathBuf, options: ServerOptions) -> Server {
    let store = SessionStore::open(dir).expect("open store");
    Server::start(store, options).expect("start server")
}

/// Feeds raw bytes through the framing layer and the command parser; the
/// only acceptable outcomes are parsed commands and typed errors.
fn exhaust_frames(bytes: &[u8], max_frame: usize) -> (usize, usize) {
    let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()), max_frame, None);
    let (mut frames, mut errors) = (0, 0);
    loop {
        match reader.next_frame() {
            Ok(Some(frame)) => {
                frames += 1;
                if parse_command(&frame).is_err() {
                    errors += 1;
                }
            }
            Ok(None) => return (frames, errors),
            Err(_) => return (frames, errors + 1),
        }
    }
}

#[test]
fn every_single_byte_flip_of_valid_frames_stays_typed() {
    for line in corpus() {
        let bytes = line.as_bytes();
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[position] ^= 1 << bit;
                // Layer 1: the framing layer (the flip may break UTF-8 or
                // inject a newline — both must stay typed).
                let mut framed = mutated.clone();
                framed.push(b'\n');
                exhaust_frames(&framed, 4096);
                // Layer 2: the command parser, when the flip kept it text.
                if let Ok(text) = std::str::from_utf8(&mutated) {
                    let _ = parse_command(text);
                    let _ = Response::parse(text);
                }
            }
        }
    }
}

#[test]
fn every_truncation_of_valid_frames_stays_typed() {
    for line in corpus() {
        let bytes = line.as_bytes();
        for cut in 0..=bytes.len() {
            // A clean truncation at a char boundary parses or errors typed…
            if let Ok(text) = std::str::from_utf8(&bytes[..cut]) {
                let _ = parse_command(text);
                let _ = Response::parse(text);
            }
            // …and an EOF mid-frame (no trailing newline) is reported as
            // `Truncated`, never silently dropped as a clean close.
            let mut reader = FrameReader::new(Cursor::new(bytes[..cut].to_vec()), 4096, None);
            match reader.next_frame() {
                Ok(Some(_)) | Err(_) => {}
                Ok(None) => assert_eq!(cut, 0, "mid-frame EOF at {cut} read as a clean close"),
            }
        }
    }
}

#[test]
fn garbage_streams_yield_typed_errors_only() {
    let mut state = 0x5EED_CAFE_u64 | 1;
    let mut step = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..64 {
        let len = (step() % 2048) as usize;
        let mut blob: Vec<u8> = (0..len).map(|_| (step() & 0xFF) as u8).collect();
        // Sprinkle newlines so the framing layer actually yields frames.
        for chunk in blob.chunks_mut(64) {
            if let Some(last) = chunk.last_mut() {
                *last = b'\n';
            }
        }
        // Small frame bounds exercise the FrameTooLong path too.
        let max_frame = if round % 3 == 0 { 64 } else { 4096 };
        exhaust_frames(&blob, max_frame);
    }
}

#[test]
fn interleaved_partial_writes_reassemble_into_whole_commands() {
    let dir = unique_dir("dribble");
    let server = start_server(
        &dir,
        ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
    );
    let (mut client_end, server_end) = UnixStream::pair().expect("pair");
    client_end.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let handler = {
        let server = server.clone();
        let read_half = server_end.try_clone().expect("clone");
        std::thread::spawn(move || server.handle_connection(read_half, server_end))
    };

    let mut spec = SubmitSpec::new("dribble-0");
    spec.duration_s = Some(0.01);
    spec.step_at_s = Some(0.004);
    // One byte at a time, with pauses: the reader must buffer until the
    // newline no matter how the bytes are interleaved by the transport.
    let line = format!("{}\n", Command::Submit(spec).to_line());
    for byte in line.as_bytes() {
        client_end.write_all(std::slice::from_ref(byte)).expect("dribble");
        client_end.flush().expect("flush");
        if byte % 7 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Pipelined frames in one write must produce one reply each, in order.
    client_end.write_all(b"ping\nstats\n").expect("pipeline");

    let mut reader = FrameReader::new(client_end.try_clone().expect("clone"), 4096, None);
    let submit_reply = reader.next_frame().expect("reply").expect("frame");
    assert!(
        matches!(Response::parse(&submit_reply), Ok(Response::Submitted { .. })),
        "dribbled submit answered {submit_reply:?}"
    );
    let ping_reply = reader.next_frame().expect("reply").expect("frame");
    assert_eq!(Response::parse(&ping_reply).expect("parse"), Response::Pong);
    let stats_reply = reader.next_frame().expect("reply").expect("frame");
    assert!(matches!(Response::parse(&stats_reply), Ok(Response::Stats(_))));

    drop(reader);
    drop(client_end);
    let _ = handler.join();
    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_connections_leak_no_sessions_and_never_kill_the_server() {
    let dir = unique_dir("hostile");
    let server = start_server(
        &dir,
        ServerOptions {
            workers: Some(2),
            slice_s: 0.002,
            max_frame_len: 256,
            ..ServerOptions::default()
        },
    );

    let attacks: Vec<Vec<u8>> = vec![
        b"submit\n".to_vec(),                    // missing id
        b"submit \x00evil\n".to_vec(),           // control chars in id
        b"submit ok id=trick\n".to_vec(),        // option-shaped id elsewhere
        b"submit j class=warp9\n".to_vec(),      // unknown class
        b"submit j deadline=NaN\n".to_vec(),     // non-finite deadline
        b"submit j deadline=-1\n".to_vec(),      // negative deadline
        b"submit j scenario=3\n".to_vec(),       // unknown scenario
        b"warp 9\n".to_vec(),                    // unknown command
        b"\n\n\n\n".to_vec(),                    // empty frames
        vec![0xC3, 0x28, b'\n'],                 // invalid UTF-8
        [vec![b'A'; 512], vec![b'\n']].concat(), // frame past the bound
        vec![0xFF; 300],                         // garbage, no newline
    ];
    for attack in &attacks {
        let (mut client_end, server_end) = UnixStream::pair().expect("pair");
        client_end.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let handler = {
            let server = server.clone();
            let read_half = server_end.try_clone().expect("clone");
            std::thread::spawn(move || server.handle_connection(read_half, server_end))
        };
        client_end.write_all(attack).expect("attack bytes");
        // Whatever came back must parse as a response line (typically
        // `err protocol …`); a closed connection is equally acceptable.
        let mut reader = FrameReader::new(client_end.try_clone().expect("clone"), 4096, None);
        if let Ok(Some(reply)) = reader.next_frame() {
            let parsed = Response::parse(&reply).expect("server replies stay parseable");
            assert!(
                matches!(parsed, Response::Error(_)),
                "hostile frame {attack:?} was answered {parsed:?}"
            );
        }
        drop(reader);
        drop(client_end);
        let _ = handler.join();
    }

    // No attack admitted, billed, shed or left behind any session.
    let stats = server.stats();
    assert_eq!(
        (stats.offered, stats.admitted, stats.shed, stats.depths),
        (0, 0, 0, [0, 0, 0]),
        "hostile bytes must never touch the session books: {stats:?}"
    );
    // And the server still does real work afterwards.
    let mut spec = SubmitSpec::new("survivor");
    spec.duration_s = Some(0.01);
    spec.step_at_s = Some(0.004);
    assert!(matches!(server.execute(Command::Submit(spec)), Response::Submitted { .. }));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Response::Status(info) = server.execute(Command::Status { id: "survivor".into() }) {
            if info.state == WireState::Done {
                break;
            }
        }
        assert!(Instant::now() < deadline, "survivor never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_wire_faults_stay_typed_and_spend_every_budget() {
    let dir = unique_dir("wirefault");
    // Both wire sites armed across all their kinds: torn reads, bit flips,
    // I/O errors and stalls on the read side; dropped replies and stalls on
    // the write side.
    let plan = Arc::new(FaultPlan::new(0xF417).with_site(FaultSite::WireRead, 5, 12).with_site(
        FaultSite::WireWrite,
        7,
        6,
    ));
    let server = start_server(
        &dir,
        ServerOptions {
            workers: Some(2),
            slice_s: 0.002,
            fault_plan: Some(plan.clone()),
            ..ServerOptions::default()
        },
    );

    let connect_server = server.clone();
    let mut client = Client::new(
        move |policy: &RetryPolicy| -> std::io::Result<(UnixStream, UnixStream)> {
            let (client_end, server_end) = UnixStream::pair()?;
            client_end.set_read_timeout(Some(policy.deadline))?;
            let handler = connect_server.clone();
            let read_half = server_end.try_clone()?;
            std::thread::spawn(move || {
                let _ = handler.handle_connection(read_half, server_end);
            });
            Ok((client_end.try_clone()?, client_end))
        },
        RetryPolicy {
            attempts: 5,
            deadline: Duration::from_secs(5),
            backoff: Duration::from_millis(2),
        },
    );

    // Hammer the faulty wire until every budget is spent. Commands may fail
    // even after retries (the fault plan can eat several attempts in a
    // row) — that is fine as long as every failure is typed; panics would
    // abort the test on the spot.
    let mut submitted = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    for round in 0.. {
        if plan.drained().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "fault budgets never drained: {:?}", plan.drained());
        let _ = client.send(&Command::Ping);
        if round % 3 == 0 {
            let mut spec = SubmitSpec::new(format!("storm-{round}"));
            spec.duration_s = Some(0.008);
            spec.step_at_s = Some(0.003);
            spec.class = JobClass::ALL[round % 3];
            if let Ok(Response::Submitted { id, .. } | Response::Resubmitted { id, .. }) =
                client.send(&Command::Submit(spec))
            {
                submitted.push(id)
            }
        }
        let _ = client.send(&Command::Stats);
    }
    plan.drained().expect("all wire fault budgets spent");

    // The books survived the storm: every session the client saw admitted
    // resolves, nothing leaks resident, and the offer ledger balances.
    let deadline = Instant::now() + Duration::from_secs(120);
    let stats = loop {
        let stats = server.stats();
        if stats.done + stats.failed + stats.cancelled == stats.admitted {
            break stats;
        }
        assert!(Instant::now() < deadline, "sessions stuck after the storm: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        stats.admitted + stats.shed + stats.resubmitted,
        stats.offered,
        "the offer ledger must balance under injected wire faults"
    );
    assert_eq!(stats.failed, 0, "wire faults must never fail a session");
    assert_eq!(stats.depths, [0, 0, 0]);
    for id in &submitted {
        match server.execute(Command::Status { id: id.clone() }) {
            Response::Status(info) => {
                assert_eq!(info.state, WireState::Done, "{id} left unresolved")
            }
            other => panic!("status of {id} answered {other:?}"),
        }
    }

    server.execute(Command::Drain);
    server.join();

    // A hostile wire must never leak sessions into the store either.
    let store = SessionStore::open(&dir).expect("reopen");
    assert!(store.active_ids().is_empty(), "sessions leaked into the store");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `ProtocolError` is the *only* error currency: every variant renders a
/// human-readable line (used verbatim in `err protocol …` replies).
#[test]
fn protocol_errors_render_stably() {
    let samples: Vec<ProtocolError> = vec![
        ProtocolError::Empty,
        ProtocolError::FrameTooLong { len: 9999, max: 4096 },
        ProtocolError::InvalidUtf8,
        ProtocolError::UnknownCommand("warp".into()),
        ProtocolError::MissingArgument { command: "submit", argument: "id" },
        ProtocolError::InvalidArgument {
            argument: "deadline".into(),
            value: "NaN".into(),
            reason: "not finite".into(),
        },
        ProtocolError::Truncated,
        ProtocolError::Disconnected,
        ProtocolError::MalformedResponse("ok what".into()),
    ];
    for error in samples {
        let rendered = error.to_string();
        assert!(!rendered.is_empty());
        assert!(!rendered.contains('\n'), "error text must stay single-line: {rendered:?}");
    }
}
