//! Crash-recovery torture battery: a store-backed batch driven to completion
//! through repeated fault-injected service kills, torn writes, bit flips,
//! I/O errors and injected panics — all from one deterministic seeded
//! [`FaultPlan`]. Pinned properties:
//!
//! * the batch **converges**: restarting the service over the same
//!   [`SessionStore`] re-admits interrupted jobs from their last sealed
//!   frame and eventually completes every job, with ≥ 5 kill/restart cycles
//!   actually exercised mid-batch;
//! * every completed job's final state is **bit-identical** to an
//!   uninterrupted sequential run, no matter how many crashes interrupted it;
//! * **billing conserves across restarts**: a recovered job's frame carries
//!   its engine-time counters, so the billed total equals the report total
//!   exactly — crashes never double-bill or drop time;
//! * the quarantine/recovery **ledger balances** every cycle, no panic
//!   escapes the service, and the store directory ends clean: no `*.tmp`
//!   litter, no active entries left behind.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use harvsim::core::mixed::ControlEvent;
use harvsim::linalg::DVector;
use harvsim::{
    FaultKind, FaultPlan, FaultSite, ScenarioConfig, ServiceError, ServiceOptions, SessionService,
    SessionStore, Simulation, StoreOptions,
};

const JOBS: usize = 18;
const DURATION_S: f64 = 0.015;
const SLICE_S: f64 = 0.004; // => ~4 slices per job, ~72+ slice boundaries per clean pass

/// Keep deliberately injected panics out of the test output while leaving the
/// default hook in charge of every *real* panic (assertion failures included).
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains("injected fault") {
                default_hook(info);
            }
        }));
    });
}

/// A store directory unique to this process and call site.
fn unique_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("harvsim-recovery-{tag}-{}-{n}", std::process::id()))
}

/// Job `k`'s scenario: same closed-loop shape as the stress battery, with a
/// per-job perturbation so a resurrected or swapped frame would be caught by
/// the bit-identity comparison.
fn job_scenario(k: usize) -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = DURATION_S;
    scenario.frequency_step_time_s = 0.005;
    scenario.controller.watchdog_period_s = 0.006;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.002;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.002;
    scenario.initial_supercap_voltage = 2.5 + k as f64 * 1e-4;
    scenario.label = Some(format!("job-{k}"));
    scenario
}

/// Plain-data extract of a sequential single-thread run.
struct Reference {
    final_state: DVector,
    state_space_steps: usize,
    digital_events: u64,
    control_events: Vec<ControlEvent>,
}

fn reference_for(k: usize) -> Reference {
    let mut session = Simulation::from_config(job_scenario(k)).start().expect("job starts");
    session.run_to_end().expect("job completes");
    let report = session.report();
    Reference {
        final_state: report.final_state,
        state_space_steps: report.engine_stats.state_space.steps,
        digital_events: report.digital_events,
        control_events: report.control_events,
    }
}

fn count_files_with_suffix(dir: &std::path::Path, suffix: &str) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(suffix))
                .count()
        })
        .unwrap_or(0)
}

/// The torture loop itself. One shared seeded plan drives kills at every
/// 12th slice boundary (five of them), panics at checkpoint encode/decode
/// and slice boundaries, and torn/flipped/failing store I/O — each with a
/// finite budget, so the faults provably drain and the batch converges.
///
/// Why every 12th boundary: the batch needs ≥ `JOBS * ceil(duration/slice)`
/// ≈ 72 successful slice boundaries to complete, and the boundary ordinal
/// counts every slice attempted across all cycles — so kills at ordinals
/// 12/24/36/48/60 are all guaranteed to land mid-batch, before completion
/// is arithmetically possible.
#[test]
fn killed_and_restarted_batches_converge_bit_identically() {
    silence_injected_panics();
    let references: Vec<Reference> = (0..JOBS).map(reference_for).collect();
    let dir = unique_dir("torture");

    let plan = Arc::new(
        FaultPlan::new(0x5EED_F00D)
            .with_kills(12, 5)
            .with_site(FaultSite::SliceBoundary, 40, 2) // panics mid-schedule
            .with_site(FaultSite::CheckpointEncode, 35, 1) // panic while sealing
            .with_site(FaultSite::CheckpointDecode, 50, 1) // panic while thawing
            .with_site(FaultSite::StoreWrite, 7, 6) // torn writes, flips, I/O errors
            .with_site(FaultSite::StoreRead, 11, 3) // flips and I/O errors on load
            .with_site(FaultSite::StoreRename, 13, 2), // I/O errors at the commit point
    );

    let mut cycles = 0usize;
    let mut killed_cycles = 0usize;
    let mut total_recovered = 0usize;
    let mut total_discarded = 0usize;
    let mut total_quarantined = 0usize;
    let final_report = loop {
        cycles += 1;
        assert!(cycles <= 60, "torture loop failed to converge in 60 cycles");

        let mut store = SessionStore::open_with(
            &dir,
            StoreOptions { write_attempts: 3, retry_backoff: Duration::from_micros(50) },
        )
        .expect("store (re)opens over whatever the last crash left behind");
        store.set_fault_plan(Some(Arc::clone(&plan)));

        let service = SessionService::new(ServiceOptions {
            workers: Some(3),
            slice_s: SLICE_S,
            // Tiny budget: almost every preemption checkpoints to the store.
            resident_budget_bytes: Some(16 * 1024),
            fault_plan: Some(Arc::clone(&plan)),
            ..Default::default()
        })
        .expect("valid options");
        let jobs: Vec<Simulation> =
            (0..JOBS).map(|k| Simulation::from_config(job_scenario(k))).collect();
        let report = service.run_with_store(jobs, &store).expect("ids are unique");

        // Per-cycle ledgers must balance even on crashed cycles.
        assert_eq!(report.outcomes.len(), JOBS);
        assert_eq!(
            report.quarantined,
            report
                .outcomes
                .iter()
                .filter(|o| matches!(o.result, Err(ServiceError::SessionPanicked { .. })))
                .count(),
            "cycle {cycles}: quarantine ledger out of balance"
        );
        assert_eq!(
            report.recovered_jobs,
            report.outcomes.iter().filter(|o| o.recovered).count(),
            "cycle {cycles}: recovery ledger out of balance"
        );
        assert_eq!(
            report.degraded_writes,
            report.outcomes.iter().map(|o| o.degraded_writes).sum::<usize>(),
            "cycle {cycles}: degradation ledger out of balance"
        );

        // Jobs that did complete — even on a cycle later cut short — are
        // bit-identical and billed exactly, kills notwithstanding.
        for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
            assert_eq!(outcome.id, format!("job-{k}"));
            match &outcome.result {
                Ok(job_report) => {
                    assert_eq!(
                        job_report.final_state, reference.final_state,
                        "cycle {cycles}, job {k}: final state diverged after recovery"
                    );
                    assert_eq!(
                        job_report.engine_stats.state_space.steps,
                        reference.state_space_steps
                    );
                    assert_eq!(job_report.digital_events, reference.digital_events);
                    assert_eq!(job_report.control_events, reference.control_events);
                    assert_eq!(
                        outcome.billed_engine_time,
                        job_report.engine_time(),
                        "cycle {cycles}, job {k}: billing not conserved across restarts"
                    );
                }
                Err(ServiceError::Interrupted) => {
                    assert!(report.interrupted, "Interrupted outcomes only on killed cycles");
                }
                Err(ServiceError::SessionPanicked { id, payload }) => {
                    assert_eq!(id, &outcome.id);
                    assert!(payload.contains("injected fault"), "unexpected payload: {payload}");
                }
                Err(other) => panic!("cycle {cycles}, job {k}: unexpected error {other}"),
            }
        }

        if report.interrupted {
            killed_cycles += 1;
        }
        total_recovered += report.recovered_jobs;
        total_discarded += report.recovery_discarded;
        total_quarantined += report.quarantined;

        let clean = !report.interrupted
            && report.degraded_writes == 0
            && report.outcomes.iter().all(|o| o.result.is_ok());
        if clean {
            break report;
        }
    };

    // The schedule actually exercised what the test advertises.
    assert_eq!(plan.kills(), 5, "all five kills fired mid-batch");
    assert!(killed_cycles >= 5, "each kill interrupts its own cycle (got {killed_cycles})");
    assert!(cycles > killed_cycles, "at least one clean cycle finishes the batch");
    assert!(total_recovered > 0, "kills mid-batch must leave frames to recover from");
    assert!(total_quarantined >= 1, "at least one injected panic led to a recorded quarantine");
    assert!(
        total_quarantined
            <= (plan.injected(FaultSite::SliceBoundary)
                + plan.injected(FaultSite::CheckpointEncode)
                + plan.injected(FaultSite::CheckpointDecode)) as usize,
        "every quarantine traces back to an injected panic"
    );
    // Discards are possible (flipped reads at admission) but each one is
    // typed and the job restarted fresh — reflected in the bit-identity
    // checks above. Record the totals so a degenerate all-discard run
    // (which would make recovery vacuous) is caught.
    assert!(
        total_discarded <= total_recovered + JOBS,
        "discards stayed bounded (got {total_discarded})"
    );

    // Final pass: everything completed, bit-identically, with exact billing.
    let mut total_billed = Duration::ZERO;
    for outcome in &final_report.outcomes {
        let job_report = outcome.result.as_ref().expect("clean cycle: every job Ok");
        assert_eq!(outcome.billed_engine_time, job_report.engine_time());
        total_billed += outcome.billed_engine_time;
    }
    assert_eq!(final_report.total_billed, total_billed);

    // The store directory ends clean: no temp-file litter from torn writes
    // (crashed cycles' leftovers were swept on reopen; the clean cycle wrote
    // none), and a fresh recovery scan finds nothing left to recover.
    assert_eq!(
        count_files_with_suffix(&dir, ".tmp"),
        0,
        "no temp files survive a clean completion"
    );
    let store = SessionStore::open(&dir).expect("store reopens after completion");
    assert!(store.active_ids().is_empty(), "no session left active after a clean completion");
    assert!(store.recovery().recovered.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful degradation: when the disk refuses every write, the batch still
/// completes from resident frozen bytes — results identical, failures
/// counted, nothing panics.
#[test]
fn store_outage_degrades_to_resident_frames_without_losing_results() {
    silence_injected_panics();
    const DJOBS: usize = 4;
    let references: Vec<Reference> = (0..DJOBS).map(reference_for).collect();
    let dir = unique_dir("degraded");

    // Every store write fails with a synthetic I/O error, forever.
    let plan = Arc::new(FaultPlan::new(9).with_site_kinds(
        FaultSite::StoreWrite,
        1,
        u64::MAX,
        &[FaultKind::Io],
    ));
    let mut store = SessionStore::open_with(
        &dir,
        StoreOptions { write_attempts: 2, retry_backoff: Duration::ZERO },
    )
    .expect("store opens");
    store.set_fault_plan(Some(Arc::clone(&plan)));

    let service = SessionService::new(ServiceOptions {
        workers: Some(2),
        slice_s: SLICE_S,
        resident_budget_bytes: Some(0), // evict everything: a persist per slice
        ..Default::default()
    })
    .expect("valid options");
    let jobs: Vec<Simulation> =
        (0..DJOBS).map(|k| Simulation::from_config(job_scenario(k))).collect();
    let report = service.run_with_store(jobs, &store).expect("ids are unique");

    assert!(!report.interrupted);
    assert_eq!(report.quarantined, 0);
    assert!(report.degraded_writes > 0, "the outage was actually exercised");
    for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
        let job_report =
            outcome.result.as_ref().unwrap_or_else(|err| panic!("job {k} failed: {err}"));
        assert_eq!(
            job_report.final_state, reference.final_state,
            "job {k}: degraded-mode result diverged"
        );
        assert_eq!(outcome.billed_engine_time, job_report.engine_time());
    }
    // Nothing persisted, so nothing is left active either.
    assert!(store.active_ids().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
