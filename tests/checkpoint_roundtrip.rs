//! Durable checkpoint round-trip battery: `save → load → resume` must be
//! **bit-identical** to an uninterrupted run — trajectories, final state,
//! work statistics, digital events and control actions — for random pause
//! points, both analogue engines, IMEX on and off. This generalises
//! `tests/session_resume.rs` (in-memory pause/resume) to the serialised
//! path: the session is checkpointed to bytes, dropped, and rebuilt from the
//! bytes alone. Only the wall-clock `cpu_time` statistics are excluded from
//! the comparison — they measure the host, not the model — and billing
//! continuity is asserted separately (totals carried across the restore are
//! monotone and end at the full-run total).

use std::sync::OnceLock;

use harvsim::core::mixed::{ControlEvent, EngineStats};
use harvsim::linalg::DVector;
use harvsim::ode::Trajectory;
use harvsim::{
    BaselineOptions, ScenarioConfig, Session, Simulation, SimulationEngine, SolverOptions,
    WaveformProbe,
};
use proptest::prelude::*;

/// The comparable outcome of an uninterrupted run — a `Sync` extract of
/// `ScenarioResult` (which owns the harvester and is not shareable across
/// the proptest cases).
struct Reference {
    states: Trajectory,
    terminals: Trajectory,
    final_state: DVector,
    engine_stats: EngineStats,
    digital_events: u64,
    control_events: Vec<ControlEvent>,
}

fn reference_for(scenario: &ScenarioConfig) -> Reference {
    let result = scenario.run().expect("reference run");
    Reference {
        states: result.states().clone(),
        terminals: result.terminals().clone(),
        final_state: result.final_state.clone(),
        engine_stats: result.result.engine_stats,
        digital_events: result.result.digital_events,
        control_events: result.result.control_events.clone(),
    }
}

/// A short closed-loop scenario with enough digital activity (watchdog
/// wakes, a retune) that random pause points land mid-segment, at segment
/// boundaries, and around control actions.
fn busy_scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.5;
    scenario.frequency_step_time_s = 0.1;
    scenario.controller.watchdog_period_s = 0.15;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.05;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.02;
    scenario
}

fn record_interval(scenario: &ScenarioConfig) -> f64 {
    match &scenario.engine {
        SimulationEngine::StateSpace(options) => options.record_interval,
        SimulationEngine::NewtonRaphson(options) => options.record_interval,
    }
}

/// Engine statistics comparison, exact on every counter except the
/// wall-clock `cpu_time` fields.
fn assert_stats_match_sans_cpu(label: &str, a: &EngineStats, b: &EngineStats) {
    assert_eq!(a.state_space.steps, b.state_space.steps, "{label}: steps");
    assert_eq!(a.state_space.linearisations, b.state_space.linearisations, "{label}");
    assert_eq!(a.state_space.factorisations, b.state_space.factorisations, "{label}");
    assert_eq!(a.state_space.cached_solves, b.state_space.cached_solves, "{label}");
    assert_eq!(a.state_space.stability_updates, b.state_space.stability_updates, "{label}");
    assert_eq!(a.state_space.steps_by_order, b.state_space.steps_by_order, "{label}");
    assert_eq!(a.state_space.stiff_exact_steps, b.state_space.stiff_exact_steps, "{label}");
    assert_eq!(
        a.state_space.constant_stamps_skipped, b.state_space.constant_stamps_skipped,
        "{label}"
    );
    assert_eq!(a.state_space.pwl_stamps_skipped, b.state_space.pwl_stamps_skipped, "{label}");
    assert_eq!(a.state_space.binding_pole, b.state_space.binding_pole, "{label}");
    assert_eq!(a.state_space.max_jacobian_change, b.state_space.max_jacobian_change, "{label}");
    assert_eq!(a.baseline.steps, b.baseline.steps, "{label}: baseline steps");
    assert_eq!(a.baseline.newton_iterations, b.baseline.newton_iterations, "{label}");
    assert_eq!(a.baseline.factorisations, b.baseline.factorisations, "{label}");
}

/// Runs the scenario with checkpoint/drop/restore cycles at the two pause
/// fractions and asserts the outcome is bit-identical to `reference`.
fn assert_durable_roundtrip(scenario: &ScenarioConfig, reference: &Reference, pauses: [f64; 2]) {
    let interval = record_interval(scenario);
    let mut session = Simulation::from_config(scenario.clone()).start().expect("session starts");
    let mut probe_id = session.add_probe(WaveformProbe::new(interval));
    let mut billed_floor = std::time::Duration::ZERO;
    for fraction in pauses {
        let pause = fraction * scenario.duration_s;
        session.run_until(pause).expect("runs to the pause point");
        // Save, drop the live session entirely, rebuild from bytes alone.
        let bytes = session.checkpoint().expect("checkpoint serialises");
        drop(session);
        let (restored, ids) =
            Session::restore_with_probes(&bytes, vec![Box::new(WaveformProbe::new(interval))])
                .expect("checkpoint restores");
        assert_eq!(ids.len(), 1);
        probe_id = ids[0];
        // Billing continuity: the carried engine-time total never regresses
        // across a save/restore boundary.
        let billed = restored.report().engine_time();
        assert!(billed >= billed_floor, "billing went backwards across restore");
        billed_floor = billed;
        session = restored;
    }
    session.run_to_end().expect("resumed run completes");
    assert!(session.is_finished());
    let report = session.report();
    assert!(report.engine_time() >= billed_floor, "final billing below carried total");

    assert_eq!(
        report.final_state, reference.final_state,
        "final state must match bit for bit (pauses {pauses:?})"
    );
    assert_stats_match_sans_cpu("work statistics", &report.engine_stats, &reference.engine_stats);
    assert_eq!(report.digital_events, reference.digital_events);
    assert_eq!(report.control_events, reference.control_events);

    // The probe's trajectory — saved samples carried through the checkpoint,
    // later samples recorded by the resumed march — matches the
    // uninterrupted dense capture sample for sample.
    let probe = session.probe::<WaveformProbe>(probe_id).expect("probe survives with its type");
    assert_eq!(probe.states().times(), reference.states.times(), "sample grid");
    for (i, (sample, expected)) in
        probe.states().states().iter().zip(reference.states.states()).enumerate()
    {
        assert_eq!(sample, expected, "state sample {i}");
    }
    for (i, (sample, expected)) in
        probe.terminals().states().iter().zip(reference.terminals.states()).enumerate()
    {
        assert_eq!(sample, expected, "terminal sample {i}");
    }
}

fn state_space_reference() -> &'static (ScenarioConfig, Reference) {
    static REF: OnceLock<(ScenarioConfig, Reference)> = OnceLock::new();
    REF.get_or_init(|| {
        let scenario = busy_scenario();
        let reference = reference_for(&scenario);
        (scenario, reference)
    })
}

fn imex_off_reference() -> &'static (ScenarioConfig, Reference) {
    static REF: OnceLock<(ScenarioConfig, Reference)> = OnceLock::new();
    REF.get_or_init(|| {
        let mut scenario = busy_scenario();
        scenario.engine =
            SimulationEngine::StateSpace(SolverOptions { imex: false, ..Default::default() });
        let reference = reference_for(&scenario);
        (scenario, reference)
    })
}

fn baseline_reference() -> &'static (ScenarioConfig, Reference) {
    static REF: OnceLock<(ScenarioConfig, Reference)> = OnceLock::new();
    REF.get_or_init(|| {
        let mut scenario = busy_scenario();
        scenario.duration_s = 0.3; // the Newton baseline is ~7× slower per second
        scenario.engine = SimulationEngine::NewtonRaphson(BaselineOptions::default());
        let reference = reference_for(&scenario);
        (scenario, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn state_space_durable_roundtrip(p1 in 0.05f64..0.9, p2 in 0.05f64..0.9) {
        let (scenario, reference) = state_space_reference();
        assert_durable_roundtrip(scenario, reference, [p1.min(p2), p1.max(p2)]);
    }

    #[test]
    fn state_space_durable_roundtrip_imex_off(p1 in 0.05f64..0.9, p2 in 0.05f64..0.9) {
        let (scenario, reference) = imex_off_reference();
        assert_durable_roundtrip(scenario, reference, [p1.min(p2), p1.max(p2)]);
    }

    #[test]
    fn baseline_durable_roundtrip(p1 in 0.05f64..0.9, p2 in 0.05f64..0.9) {
        let (scenario, reference) = baseline_reference();
        assert_durable_roundtrip(scenario, reference, [p1.min(p2), p1.max(p2)]);
    }
}

/// A checkpoint at `t = 0` (nothing run yet) and one after the session
/// finished both round-trip cleanly — the boundary cases the random pause
/// fractions cannot hit.
#[test]
fn edge_time_checkpoints_roundtrip() {
    let (scenario, reference) = state_space_reference();
    // t = 0: nothing marched, no in-flight march in the frame.
    let session = Simulation::from_config(scenario.clone()).start().unwrap();
    let bytes = session.checkpoint().unwrap();
    drop(session);
    let mut restored = Session::restore(&bytes).unwrap();
    restored.run_to_end().unwrap();
    assert_eq!(restored.report().final_state, reference.final_state);

    // Finished: the checkpoint captures the terminal state and restores as
    // a finished session.
    let mut session = Simulation::from_config(scenario.clone()).start().unwrap();
    session.run_to_end().unwrap();
    let report = session.report();
    let bytes = session.checkpoint().unwrap();
    let restored = Session::restore(&bytes).unwrap();
    assert!(restored.is_finished());
    assert_eq!(restored.report().final_state, report.final_state);
    assert_eq!(restored.report().engine_time(), report.engine_time());
}

/// A session opened over an ad-hoc harvester (no `ScenarioConfig`) refuses
/// to checkpoint with a typed configuration error instead of producing an
/// unrestorable frame.
#[test]
fn ad_hoc_sessions_refuse_to_checkpoint() {
    let scenario = busy_scenario();
    let harvester = scenario.build_harvester().expect("harvester builds");
    let session = Session::start(
        harvester,
        scenario.controller,
        scenario.engine,
        scenario.duration_s,
        scenario.initial_supercap_voltage,
    )
    .expect("session starts");
    match session.checkpoint() {
        Err(harvsim::CoreError::InvalidConfiguration(_)) => {}
        other => panic!("expected InvalidConfiguration, got {other:?}"),
    }
}
