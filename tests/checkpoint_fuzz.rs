//! Corruption battery for the checkpoint decoder: **every** prefix
//! truncation and a full single-byte-flip sweep of a valid checkpoint must
//! produce a typed [`harvsim::CoreError::Checkpoint`] error — never a panic,
//! never undefined behaviour, and never a silently different resume. The
//! "silently different" half is pinned with an FNV checksum of the resumed
//! trajectory against the uncorrupted golden: if a corrupted frame were ever
//! accepted, its resumed run would have to reproduce the golden checksum
//! bit for bit to pass.
//!
//! The sweep is exhaustive because the frame's trailing FNV-1a checksum
//! makes it cheap to reason about: the per-byte hash update is a bijection
//! of the hash state, so any single-byte change anywhere in the frame is
//! guaranteed to change the checksum (flips inside the stored checksum
//! trivially mismatch too). Header-field flips are caught even earlier by
//! the magic/version/kind checks.
//!
//! The `store_battery` module extends the same contract to the on-disk
//! [`harvsim::SessionStore`]: torn-tail truncations, stale atomic-write
//! temporaries, missing/orphaned/swapped frames and a lost or corrupted
//! manifest must each recover or fail **typed** at the next open — never
//! panic, and never resurrect a half-written frame.

use harvsim::{fnv1a64, CoreError, ScenarioConfig, Session, Simulation};

/// Small closed-loop scenario; paused mid-segment so the checkpoint carries
/// an in-flight march (the largest, most structured payload section).
fn scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.12;
    scenario.frequency_step_time_s = 0.03;
    scenario.controller.watchdog_period_s = 0.04;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.01;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.005;
    scenario
}

/// A valid mid-segment checkpoint plus the golden checksum of the resumed
/// run's final state.
fn golden() -> (Vec<u8>, u64) {
    let mut session = Simulation::from_config(scenario()).start().expect("session starts");
    session.run_until(0.05).expect("runs to the pause point");
    let bytes = session.checkpoint().expect("checkpoint serialises");
    let mut resumed = Session::restore(&bytes).expect("valid frame restores");
    resumed.run_to_end().expect("resumed run completes");
    (bytes, final_state_checksum(&resumed))
}

fn final_state_checksum(session: &Session) -> u64 {
    let report = session.report();
    let mut bytes = Vec::with_capacity(report.final_state.len() * 8);
    for &value in report.final_state.as_slice() {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Asserts the decoder's contract for corrupted input: a typed checkpoint
/// error — or, if the frame were somehow accepted, a resume that reproduces
/// the golden checksum exactly (anything else is a silently wrong resume).
fn assert_rejected_or_identical(bytes: &[u8], golden_checksum: u64, what: &str) {
    match Session::restore(bytes) {
        Err(CoreError::Checkpoint(_)) => {}
        Err(other) => panic!("{what}: expected a typed checkpoint error, got {other:?}"),
        Ok(mut session) => {
            session
                .run_to_end()
                .unwrap_or_else(|err| panic!("{what}: accepted frame failed to resume: {err}"));
            assert_eq!(
                final_state_checksum(&session),
                golden_checksum,
                "{what}: accepted frame resumed to a DIFFERENT simulation"
            );
        }
    }
}

#[test]
fn every_prefix_truncation_is_rejected_with_a_typed_error() {
    let (bytes, _) = golden();
    for len in 0..bytes.len() {
        match Session::restore(&bytes[..len]) {
            Err(CoreError::Checkpoint(_)) => {}
            Err(other) => {
                panic!("truncation to {len}/{} bytes: unexpected error {other:?}", bytes.len())
            }
            Ok(_) => panic!(
                "truncation to {len}/{} bytes was accepted — a partial frame resumed",
                bytes.len()
            ),
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected_or_bit_identical() {
    let (bytes, golden_checksum) = golden();
    let mut corrupted = bytes.clone();
    for index in 0..corrupted.len() {
        corrupted[index] ^= 0xff;
        assert_rejected_or_identical(&corrupted, golden_checksum, &format!("flip at byte {index}"));
        corrupted[index] = bytes[index];
    }
    // A low-bit flip exercises different early-header comparisons than the
    // full-byte inversion (e.g. version 1 → 0 rather than 1 → 254).
    for index in 0..corrupted.len().min(64) {
        corrupted[index] ^= 0x01;
        assert_rejected_or_identical(
            &corrupted,
            golden_checksum,
            &format!("low-bit flip at byte {index}"),
        );
        corrupted[index] = bytes[index];
    }
}

/// Appending trailing garbage after a well-formed frame is also a typed
/// error — a frame is the whole input, not a prefix of it.
#[test]
fn trailing_garbage_is_rejected() {
    let (bytes, golden_checksum) = golden();
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"tail");
    assert_rejected_or_identical(&padded, golden_checksum, "4 trailing bytes");
}

/// The empty input and tiny non-frames fail with `Truncated`, and random
/// non-checkpoint bytes with `BadMagic` — the two first-line errors callers
/// see for "this file is not a checkpoint at all".
#[test]
fn non_frames_fail_with_first_line_errors() {
    use harvsim::CheckpointError;
    match Session::restore(&[]) {
        Err(CoreError::Checkpoint(CheckpointError::Truncated { .. })) => {}
        other => panic!("empty input: expected Truncated, got {other:?}"),
    }
    let not_a_frame = vec![0x42u8; 64];
    match Session::restore(&not_a_frame) {
        Err(CoreError::Checkpoint(CheckpointError::BadMagic)) => {}
        other => panic!("garbage input: expected BadMagic, got {other:?}"),
    }
}

/// On-disk store corruption battery: every crash trace a filesystem can
/// leave behind either recovers or is discarded with a typed
/// [`harvsim::StoreError`] at the next open.
mod store_battery {
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    use harvsim::{SessionStore, StoreError};

    use super::{scenario, Simulation};

    const ALPHA: &str = "session-1";
    const BETA: &str = "session-2";

    fn unique_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("harvsim-storefuzz-{tag}-{}-{n}", std::process::id()))
    }

    /// A real mid-run session frame, perturbed per id so the two stored
    /// sessions never share bytes (a swap is guaranteed detectable).
    fn mid_run_frame(offset: usize) -> Vec<u8> {
        let mut config = scenario();
        config.initial_supercap_voltage = 2.5 + offset as f64 * 1e-3;
        config.label = Some(format!("session-{offset}"));
        let mut session = Simulation::from_config(config).start().expect("session starts");
        session.run_until(0.05).expect("runs to the pause point");
        session.checkpoint().expect("frame seals")
    }

    /// Seeds a fresh store at `dir` with the two frames and drops it — the
    /// starting point every test then vandalises.
    fn seed(dir: &Path, alpha: &[u8], beta: &[u8]) -> PathBuf {
        let store = SessionStore::open(dir).expect("fresh store opens");
        store.put(ALPHA, alpha).expect("alpha stored");
        store.put(BETA, beta).expect("beta stored");
        store.frame_path(ALPHA)
    }

    /// Asserts the reopened store discarded `id` with a typed error while
    /// keeping `BETA` fully readable, and that the bad frame file was moved
    /// aside rather than left in place as a live `.ckpt`.
    fn assert_discarded_typed(store: &SessionStore, id: &str, beta: &[u8], what: &str) {
        assert!(
            store.recovery().discarded.iter().any(|(d, _)| d == id),
            "{what}: `{id}` must appear in the discard ledger"
        );
        assert!(!store.is_active(id), "{what}: `{id}` must not stay active");
        match store.get(id) {
            Err(StoreError::UnknownSession { .. }) => {}
            other => panic!("{what}: get after discard must be UnknownSession, got {other:?}"),
        }
        assert_eq!(store.active_ids(), vec![BETA.to_string()], "{what}: the healthy frame stays");
        assert_eq!(store.get(BETA).expect("healthy frame loads"), beta, "{what}: beta intact");
    }

    /// A crash mid-write can only tear the *tail* of an atomically renamed
    /// file's predecessor — simulate it by truncating the frame at every
    /// stride point. Each truncation must be discarded typed on reopen and
    /// never resurrected as a session.
    #[test]
    fn torn_tail_truncations_are_discarded_never_resurrected() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let stride = (alpha.len() / 24).max(1);
        let mut lengths: Vec<usize> = (0..alpha.len()).step_by(stride).collect();
        lengths.push(alpha.len() - 1);
        for keep in lengths {
            let dir = unique_dir("torn");
            let frame_path = seed(&dir, &alpha, &beta);
            let truncated = &alpha[..keep];
            fs::write(&frame_path, truncated).expect("simulated torn tail");

            let store = SessionStore::open(&dir).expect("reopen never panics on a torn frame");
            assert_discarded_typed(&store, ALPHA, &beta, &format!("torn tail at {keep} bytes"));
            match &store.recovery().discarded[0] {
                (id, StoreError::ManifestDisagreement { .. }) => assert_eq!(id, ALPHA),
                (id, other) => panic!("torn tail at {keep}: `{id}` discarded as {other:?}"),
            }
            fs::remove_dir_all(&dir).ok();
        }
    }

    /// Stale `*.tmp` files — the trace of a crash before rename — are swept
    /// on open and never mistaken for frames.
    #[test]
    fn stale_temp_files_are_swept_on_open() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let dir = unique_dir("tmp");
        let frame_path = seed(&dir, &alpha, &beta);
        let tmp_frame = frame_path.with_extension("ckpt.tmp");
        fs::write(&tmp_frame, &alpha[..alpha.len() / 2]).expect("stale frame temp");
        let tmp_manifest = dir.join("MANIFEST.tmp");
        fs::write(&tmp_manifest, b"half a manifest").expect("stale manifest temp");

        let store = SessionStore::open(&dir).expect("reopen sweeps temporaries");
        assert_eq!(store.recovery().swept_temp_files, 2, "both temporaries swept");
        assert!(!tmp_frame.exists() && !tmp_manifest.exists(), "temp files are gone");
        assert!(store.recovery().discarded.is_empty(), "sweeping costs no session");
        assert_eq!(store.active_ids(), vec![ALPHA.to_string(), BETA.to_string()]);
        assert_eq!(store.get(ALPHA).expect("alpha loads"), alpha);
        assert_eq!(store.get(BETA).expect("beta loads"), beta);
        fs::remove_dir_all(&dir).ok();
    }

    /// An active manifest record whose frame file vanished (the other half
    /// of the disagreement space) is discarded typed, not an open failure.
    #[test]
    fn missing_frame_behind_an_active_record_is_discarded_typed() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let dir = unique_dir("missing");
        let frame_path = seed(&dir, &alpha, &beta);
        fs::remove_file(&frame_path).expect("frame vanishes");

        let store = SessionStore::open(&dir).expect("reopen survives a missing frame");
        assert_discarded_typed(&store, ALPHA, &beta, "missing frame");
        fs::remove_dir_all(&dir).ok();
    }

    /// A frame file with no manifest record (the rename-before-manifest
    /// crash window) is quarantined: the record is authoritative, so a frame
    /// the manifest never acknowledged must not come back as a session.
    #[test]
    fn orphan_frames_are_quarantined_not_adopted() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let ghost = mid_run_frame(3);
        let dir = unique_dir("orphan");
        seed(&dir, &alpha, &beta);
        let ghost_path = dir.join("ghost.ckpt");
        fs::write(&ghost_path, &ghost).expect("orphan frame lands");

        let store = SessionStore::open(&dir).expect("reopen survives an orphan frame");
        assert!(
            store.recovery().discarded.iter().any(|(id, err)| {
                id == "ghost" && matches!(err, StoreError::ManifestDisagreement { .. })
            }),
            "the orphan is discarded with a typed disagreement"
        );
        assert!(!ghost_path.exists(), "the orphan no longer poses as a frame");
        assert!(dir.join("ghost.ckpt.corrupt").exists(), "the orphan is kept aside for forensics");
        assert_eq!(store.active_ids(), vec![ALPHA.to_string(), BETA.to_string()]);
        fs::remove_dir_all(&dir).ok();
    }

    /// Two frames swapped on disk (a hostile or badly-cloned directory):
    /// both checksums disagree with their manifest records, so both are
    /// discarded — a session is never silently resumed from another
    /// session's state.
    #[test]
    fn swapped_frames_are_both_discarded() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let dir = unique_dir("swap");
        seed(&dir, &alpha, &beta);
        let store = SessionStore::open(&dir).expect("store reopens");
        let alpha_path = store.frame_path(ALPHA);
        let beta_path = store.frame_path(BETA);
        drop(store);
        fs::write(&alpha_path, &beta).expect("alpha gets beta's bytes");
        fs::write(&beta_path, &alpha).expect("beta gets alpha's bytes");

        let store = SessionStore::open(&dir).expect("reopen survives swapped frames");
        for id in [ALPHA, BETA] {
            assert!(
                store.recovery().discarded.iter().any(|(d, err)| {
                    d == id && matches!(err, StoreError::ManifestDisagreement { .. })
                }),
                "`{id}` must be discarded after the swap"
            );
        }
        assert!(store.active_ids().is_empty(), "no swapped frame is resurrected");
        fs::remove_dir_all(&dir).ok();
    }

    /// Losing the manifest outright switches recovery to rebuild mode: every
    /// internally-sealed frame is adopted (the service's scenario-label
    /// check is the backstop against mis-keyed frames), and the rebuilt
    /// store serves the original bytes.
    #[test]
    fn lost_manifest_rebuilds_and_adopts_sealed_frames() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let dir = unique_dir("lostman");
        seed(&dir, &alpha, &beta);
        fs::remove_file(dir.join("MANIFEST")).expect("manifest vanishes");

        let store = SessionStore::open(&dir).expect("reopen rebuilds the manifest");
        assert!(store.recovery().manifest_rebuilt);
        assert_eq!(store.recovery().recovered, vec![ALPHA.to_string(), BETA.to_string()]);
        assert_eq!(store.get(ALPHA).expect("alpha adopted"), alpha);
        assert_eq!(store.get(BETA).expect("beta adopted"), beta);
        assert!(dir.join("MANIFEST").exists(), "the rebuilt manifest is persisted");
        fs::remove_dir_all(&dir).ok();
    }

    /// A corrupted manifest (any single byte) parses as garbage, falls back
    /// to the same rebuild path, and a *non-frame* file caught in the sweep
    /// is quarantined rather than adopted.
    #[test]
    fn corrupt_manifest_rebuilds_and_rejects_unsealed_frames() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let dir = unique_dir("corruptman");
        seed(&dir, &alpha, &beta);
        let manifest_path = dir.join("MANIFEST");
        let mut bytes = fs::read(&manifest_path).expect("manifest reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&manifest_path, &bytes).expect("manifest corrupted");
        // An unsealed impostor must not ride in on the rebuild.
        fs::write(dir.join("impostor.ckpt"), b"not a sealed frame").expect("impostor lands");

        let store = SessionStore::open(&dir).expect("reopen survives a corrupt manifest");
        assert!(store.recovery().manifest_rebuilt);
        assert_eq!(store.recovery().recovered, vec![ALPHA.to_string(), BETA.to_string()]);
        assert!(
            store
                .recovery()
                .discarded
                .iter()
                .any(|(id, err)| { id == "impostor" && matches!(err, StoreError::Corrupt { .. }) }),
            "the unsealed impostor is rejected typed"
        );
        assert!(!store.is_active("impostor"));
        fs::remove_dir_all(&dir).ok();
    }

    /// Single-byte flips across the stored frame (strided sweep): the
    /// manifest's whole-frame FNV checksum makes every one of them a typed
    /// discard on reopen — the same bijection argument as the in-memory
    /// sweep above, applied at the store layer.
    #[test]
    fn frame_byte_flips_on_disk_are_discarded_on_reopen() {
        let alpha = mid_run_frame(1);
        let beta = mid_run_frame(2);
        let stride = (alpha.len() / 16).max(1);
        for index in (0..alpha.len()).step_by(stride) {
            let dir = unique_dir("flip");
            let frame_path = seed(&dir, &alpha, &beta);
            let mut damaged = alpha.clone();
            damaged[index] ^= 0x01;
            fs::write(&frame_path, &damaged).expect("flipped frame lands");

            let store = SessionStore::open(&dir).expect("reopen never panics on a flipped frame");
            assert_discarded_typed(&store, ALPHA, &beta, &format!("bit flip at byte {index}"));
            fs::remove_dir_all(&dir).ok();
        }
    }
}
