//! Corruption battery for the checkpoint decoder: **every** prefix
//! truncation and a full single-byte-flip sweep of a valid checkpoint must
//! produce a typed [`harvsim::CoreError::Checkpoint`] error — never a panic,
//! never undefined behaviour, and never a silently different resume. The
//! "silently different" half is pinned with an FNV checksum of the resumed
//! trajectory against the uncorrupted golden: if a corrupted frame were ever
//! accepted, its resumed run would have to reproduce the golden checksum
//! bit for bit to pass.
//!
//! The sweep is exhaustive because the frame's trailing FNV-1a checksum
//! makes it cheap to reason about: the per-byte hash update is a bijection
//! of the hash state, so any single-byte change anywhere in the frame is
//! guaranteed to change the checksum (flips inside the stored checksum
//! trivially mismatch too). Header-field flips are caught even earlier by
//! the magic/version/kind checks.

use harvsim::{fnv1a64, CoreError, ScenarioConfig, Session, Simulation};

/// Small closed-loop scenario; paused mid-segment so the checkpoint carries
/// an in-flight march (the largest, most structured payload section).
fn scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.12;
    scenario.frequency_step_time_s = 0.03;
    scenario.controller.watchdog_period_s = 0.04;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.01;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.005;
    scenario
}

/// A valid mid-segment checkpoint plus the golden checksum of the resumed
/// run's final state.
fn golden() -> (Vec<u8>, u64) {
    let mut session = Simulation::from_config(scenario()).start().expect("session starts");
    session.run_until(0.05).expect("runs to the pause point");
    let bytes = session.checkpoint().expect("checkpoint serialises");
    let mut resumed = Session::restore(&bytes).expect("valid frame restores");
    resumed.run_to_end().expect("resumed run completes");
    (bytes, final_state_checksum(&resumed))
}

fn final_state_checksum(session: &Session) -> u64 {
    let report = session.report();
    let mut bytes = Vec::with_capacity(report.final_state.len() * 8);
    for &value in report.final_state.as_slice() {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Asserts the decoder's contract for corrupted input: a typed checkpoint
/// error — or, if the frame were somehow accepted, a resume that reproduces
/// the golden checksum exactly (anything else is a silently wrong resume).
fn assert_rejected_or_identical(bytes: &[u8], golden_checksum: u64, what: &str) {
    match Session::restore(bytes) {
        Err(CoreError::Checkpoint(_)) => {}
        Err(other) => panic!("{what}: expected a typed checkpoint error, got {other:?}"),
        Ok(mut session) => {
            session
                .run_to_end()
                .unwrap_or_else(|err| panic!("{what}: accepted frame failed to resume: {err}"));
            assert_eq!(
                final_state_checksum(&session),
                golden_checksum,
                "{what}: accepted frame resumed to a DIFFERENT simulation"
            );
        }
    }
}

#[test]
fn every_prefix_truncation_is_rejected_with_a_typed_error() {
    let (bytes, _) = golden();
    for len in 0..bytes.len() {
        match Session::restore(&bytes[..len]) {
            Err(CoreError::Checkpoint(_)) => {}
            Err(other) => {
                panic!("truncation to {len}/{} bytes: unexpected error {other:?}", bytes.len())
            }
            Ok(_) => panic!(
                "truncation to {len}/{} bytes was accepted — a partial frame resumed",
                bytes.len()
            ),
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected_or_bit_identical() {
    let (bytes, golden_checksum) = golden();
    let mut corrupted = bytes.clone();
    for index in 0..corrupted.len() {
        corrupted[index] ^= 0xff;
        assert_rejected_or_identical(&corrupted, golden_checksum, &format!("flip at byte {index}"));
        corrupted[index] = bytes[index];
    }
    // A low-bit flip exercises different early-header comparisons than the
    // full-byte inversion (e.g. version 1 → 0 rather than 1 → 254).
    for index in 0..corrupted.len().min(64) {
        corrupted[index] ^= 0x01;
        assert_rejected_or_identical(
            &corrupted,
            golden_checksum,
            &format!("low-bit flip at byte {index}"),
        );
        corrupted[index] = bytes[index];
    }
}

/// Appending trailing garbage after a well-formed frame is also a typed
/// error — a frame is the whole input, not a prefix of it.
#[test]
fn trailing_garbage_is_rejected() {
    let (bytes, golden_checksum) = golden();
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"tail");
    assert_rejected_or_identical(&padded, golden_checksum, "4 trailing bytes");
}

/// The empty input and tiny non-frames fail with `Truncated`, and random
/// non-checkpoint bytes with `BadMagic` — the two first-line errors callers
/// see for "this file is not a checkpoint at all".
#[test]
fn non_frames_fail_with_first_line_errors() {
    use harvsim::CheckpointError;
    match Session::restore(&[]) {
        Err(CoreError::Checkpoint(CheckpointError::Truncated { .. })) => {}
        other => panic!("empty input: expected Truncated, got {other:?}"),
    }
    let not_a_frame = vec![0x42u8; 64];
    match Session::restore(&not_a_frame) {
        Err(CoreError::Checkpoint(CheckpointError::BadMagic)) => {}
        other => panic!("garbage input: expected BadMagic, got {other:?}"),
    }
}
