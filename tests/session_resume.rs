//! Acceptance tests for session pause/resume: a run paused at arbitrary
//! `run_until` boundaries and resumed must be **bit-identical** to an
//! uninterrupted run — trajectories, final state, work statistics and control
//! actions — for both analogue engines, with the IMEX partition on and off.
//!
//! The property holds by construction (pausing keeps the in-flight march —
//! derivative history, step-ladder rung, stability plan, Newton iterate —
//! alive in the session and never truncates a step to land on the pause
//! time), and these tests pin it.

use harvsim::{
    BaselineOptions, ScenarioConfig, Simulation, SimulationEngine, SolverOptions, WaveformProbe,
};

/// A short closed-loop scenario with enough digital activity (watchdog wakes,
/// a retune) that pauses land inside analogue segments, at segment
/// boundaries, and around control actions.
fn busy_scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.9;
    scenario.frequency_step_time_s = 0.1;
    scenario.controller.watchdog_period_s = 0.25;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.05;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.02;
    scenario
}

/// Runs the scenario through a session, pausing at every time in `pauses`
/// (plus a final run_to_end), with a dense capture probe mirroring the
/// engine's record interval.
fn paused_run(
    scenario: &ScenarioConfig,
    pauses: &[f64],
) -> (harvsim::ode::Trajectory, harvsim::ode::Trajectory, harvsim::SessionReport) {
    let record_interval = match &scenario.engine {
        SimulationEngine::StateSpace(options) => options.record_interval,
        SimulationEngine::NewtonRaphson(options) => options.record_interval,
    };
    let mut session = Simulation::from_config(scenario.clone()).start().expect("session starts");
    let capture = session.add_probe(WaveformProbe::new(record_interval));
    for &pause in pauses {
        let reached = session.run_until(pause).expect("segment runs");
        // Pausing overshoots to the next accepted boundary, never undershoots.
        assert!(reached >= pause.min(scenario.duration_s) - 1e-12, "paused at {reached}");
        assert!(!session.is_finished() || reached >= scenario.duration_s - 1e-9);
    }
    session.run_to_end().expect("run completes");
    assert!(session.is_finished());
    let report = session.report();
    let probe = session.probe::<WaveformProbe>(capture).expect("typed probe");
    (probe.states().clone(), probe.terminals().clone(), report)
}

fn assert_resume_is_bit_identical(scenario: ScenarioConfig) {
    // Reference: the uninterrupted dense shim.
    let reference = scenario.run().expect("reference run");

    // Pause points chosen to land mid-segment, across watchdog boundaries and
    // right next to the span end.
    let pauses = [0.013, 0.2501, 0.251, 0.4217, 0.75, 0.8999];
    let (states, terminals, report) = paused_run(&scenario, &pauses);

    assert_eq!(report.final_state, reference.final_state, "final states must match bit for bit");
    assert_eq!(states.len(), reference.states().len(), "same recorded grid");
    for (i, (sample, expected)) in
        states.states().iter().zip(reference.states().states()).enumerate()
    {
        assert_eq!(sample, expected, "state sample {i}");
    }
    for (i, (sample, expected)) in
        terminals.states().iter().zip(reference.terminals().states()).enumerate()
    {
        assert_eq!(sample, expected, "terminal sample {i}");
    }
    assert_eq!(states.times(), reference.states().times(), "sample times match");
    // Work statistics agree exactly: the paused run took the same steps.
    let ref_stats = &reference.result.engine_stats;
    assert_eq!(report.engine_stats.state_space.steps, ref_stats.state_space.steps);
    assert_eq!(
        report.engine_stats.state_space.steps_by_order,
        ref_stats.state_space.steps_by_order
    );
    assert_eq!(report.engine_stats.baseline.steps, ref_stats.baseline.steps);
    assert_eq!(
        report.engine_stats.baseline.newton_iterations,
        ref_stats.baseline.newton_iterations
    );
    // And the digital side saw the identical event/control sequence.
    assert_eq!(report.digital_events, reference.result.digital_events);
    assert_eq!(report.control_events, reference.result.control_events);
}

#[test]
fn state_space_resume_is_bit_identical() {
    assert_resume_is_bit_identical(busy_scenario());
}

#[test]
fn state_space_resume_is_bit_identical_with_imex_off() {
    let mut scenario = busy_scenario();
    scenario.engine =
        SimulationEngine::StateSpace(SolverOptions { imex: false, ..Default::default() });
    assert_resume_is_bit_identical(scenario);
}

#[test]
fn baseline_resume_is_bit_identical() {
    let mut scenario = busy_scenario();
    scenario.duration_s = 0.5; // the Newton baseline is ~7× slower per second
    scenario.engine = SimulationEngine::NewtonRaphson(BaselineOptions::default());
    assert_resume_is_bit_identical(scenario);
}

/// Single-stepping (the finest observation granularity) is just another pause
/// pattern: stepping all the way through must match the uninterrupted run.
#[test]
fn single_stepped_session_matches_the_uninterrupted_run() {
    let mut scenario = busy_scenario();
    scenario.duration_s = 0.3;
    let reference = scenario.run().expect("reference run");

    let mut session = Simulation::from_config(scenario.clone()).start().expect("session starts");
    let capture = session.add_probe(WaveformProbe::new(1e-3));
    let mut guard = 0usize;
    while !matches!(session.step().expect("step"), harvsim::SessionStatus::Finished) {
        guard += 1;
        assert!(guard < 500_000, "session failed to finish");
    }
    assert_eq!(session.report().final_state, reference.final_state);
    let probe = session.probe::<WaveformProbe>(capture).expect("typed probe");
    assert_eq!(probe.states().len(), reference.states().len());
}
