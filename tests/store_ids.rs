//! Session-id hardening at the trust boundary: ids now arrive from the wire,
//! so the store's percent-encoding path must (1) round-trip **arbitrary
//! unicode** ids through put → reopen-scan → get bit-identically, (2) map
//! every id to a file name that stays **inside** the store directory — no
//! traversal via `..`, `/`, or encoded aliases — and (3) reject empty and
//! oversized ids typed at every entry point (`put`, `get`, `remove`), not
//! just at `put`.

use std::path::{Component, PathBuf};
use std::sync::OnceLock;

use harvsim::core::store::{SessionStore, StoreError};
use harvsim::Simulation;
use proptest::prelude::*;

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "harvsim-ids-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A genuine sealed checkpoint frame (the store's `get` re-validates frames
/// end to end, so only real frames round-trip). One is enough — id handling
/// is independent of the payload.
fn frame() -> &'static [u8] {
    static FRAME: OnceLock<Vec<u8>> = OnceLock::new();
    FRAME.get_or_init(|| {
        let mut session =
            Simulation::scenario1().duration(0.01).frequency_step_at(0.004).start().expect("start");
        session.run_until(0.002).expect("advance");
        session.checkpoint().expect("checkpoint")
    })
}

/// A deterministic hostile id from a seed: mixes unicode, separators,
/// percent signs, dots, and control characters — everything an attacker or
/// an i18n user might put on the wire.
fn hostile_id(seed: u64) -> String {
    const PALETTE: &[&str] = &[
        "a", "Z", "9", "-", "_", ".", "..", "/", "\\", "%", "%2E", "想", "é", "ß", "🦀", " ", "\t",
        "\u{0}", "\u{7}", "~", ":", "COM1", "*", "?", "'", "\"", "\u{202e}", "ñ", "中文", "..%2F",
        "a/../b",
    ];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut id = String::new();
    let pieces = 1 + (seed % 7) as usize;
    for _ in 0..pieces {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        id.push_str(PALETTE[(state % PALETTE.len() as u64) as usize]);
    }
    id
}

/// The frame path must be exactly one normal component below the store dir.
fn assert_contained(store: &SessionStore, id: &str) {
    let path = store.frame_path(id);
    let relative = path.strip_prefix(store.dir()).unwrap_or_else(|_| {
        panic!("frame path {path:?} escaped the store dir {:?} for id {id:?}", store.dir())
    });
    let components: Vec<Component> = relative.components().collect();
    assert_eq!(components.len(), 1, "id {id:?} mapped to nested path {relative:?}");
    assert!(
        matches!(components[0], Component::Normal(_)),
        "id {id:?} mapped to non-normal component {relative:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary unicode ids round-trip: the frame survives a reopen (the
    /// recovery scan re-derives the id from the encoded file name), the
    /// bytes come back identical, and the file never leaves the store dir.
    #[test]
    fn hostile_ids_round_trip_and_stay_contained(seed in 0usize..100_000) {
        let id = hostile_id(seed as u64);
        let dir = unique_dir("roundtrip");
        let store = SessionStore::open(&dir).expect("open");
        assert_contained(&store, &id);
        let bytes = frame().to_vec();
        store.put(&id, &bytes).expect("put");
        prop_assert!(store.is_active(&id));
        prop_assert_eq!(&store.get(&id).expect("get"), &bytes);

        // Reopen: the scan must rediscover exactly this id from disk.
        drop(store);
        let store = SessionStore::open(&dir).expect("reopen");
        prop_assert_eq!(store.active_ids(), vec![id.clone()]);
        prop_assert_eq!(&store.get(&id).expect("get after reopen"), &bytes);
        store.remove(&id).expect("remove");
        prop_assert!(!store.is_active(&id));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn traversal_ids_cannot_escape_the_store_directory() {
    let dir = unique_dir("traversal");
    let store = SessionStore::open(&dir).expect("open");
    let probe = dir.parent().expect("tmp parent").join("harvsim-escape-probe.ckpt");
    let _ = std::fs::remove_file(&probe);
    for id in [
        "..",
        "../escape",
        "../../escape",
        "/etc/passwd",
        "a/../../b",
        "..\\windows",
        "%2e%2e%2fescape",
        "..%2Fescape",
        ".hidden",
        "C:\\x",
    ] {
        assert_contained(&store, id);
        store.put(id, frame()).expect("put traversal-shaped id");
        assert_eq!(store.get(id).expect("get"), frame(), "round trip of {id:?}");
    }
    assert!(!probe.exists(), "a traversal id escaped the store directory");
    // Nothing outside the dir, and every file inside is store-owned.
    for entry in std::fs::read_dir(&dir).expect("read store dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            name == "MANIFEST" || name.ends_with(".ckpt"),
            "unexpected file {name:?} in store dir"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_oversized_ids_are_rejected_at_every_entry_point() {
    let dir = unique_dir("reject");
    let store = SessionStore::open(&dir).expect("open");
    let oversized = "x".repeat(513);
    // Encodes to 3 bytes per char — far past any file-name limit even
    // though the raw id is comfortably under 512 bytes.
    let wide = "ü".repeat(100);
    for id in ["", oversized.as_str(), wide.as_str()] {
        assert!(
            matches!(store.put(id, frame()), Err(StoreError::InvalidId { .. })),
            "put must reject {:?}",
            &id[..id.len().min(8)]
        );
        assert!(
            matches!(store.get(id), Err(StoreError::InvalidId { .. })),
            "get must reject invalid ids typed"
        );
        assert!(
            matches!(store.remove(id), Err(StoreError::InvalidId { .. })),
            "remove must reject invalid ids typed"
        );
    }
    // The boundary itself is fine: a 240-byte encoded stem is a valid id.
    let max = "y".repeat(240);
    store.put(&max, frame()).expect("240-byte plain id is legal");
    assert_eq!(store.get(&max).expect("get"), frame());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_canonical_stem_aliases_are_ignored_by_the_scan() {
    let dir = unique_dir("alias");
    {
        let store = SessionStore::open(&dir).expect("open");
        store.put("..", frame()).expect("put");
    }
    // Plant alias files whose decoded id collides with `..` (canonical stem
    // `%2E.`) plus assorted junk; the reopen scan must ignore them all
    // rather than let two stems claim one session id.
    for alias in ["%2E%2E.ckpt", "%2e%2e.ckpt", "%2E%2E%2F.ckpt", "%G1.ckpt", "%2.ckpt"] {
        std::fs::write(dir.join(alias), frame()).expect("plant alias");
    }
    let store = SessionStore::open(&dir).expect("reopen");
    assert_eq!(store.active_ids(), vec!["..".to_string()], "only the canonical stem decodes");
    assert_eq!(store.get("..").expect("get"), frame(), "canonical frame untouched");
    let _ = std::fs::remove_dir_all(&dir);
}
