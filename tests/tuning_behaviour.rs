//! Integration tests of the closed-loop tuning behaviour (microcontroller +
//! actuator + analogue model) and of the resonance physics of Eq. 12.

use harvsim::blocks::ControllerConfig;
use harvsim::core::mixed::{MixedSignalSimulation, SimulationEngine};
use harvsim::{HarvesterParameters, LoadMode, ScenarioConfig, SolverOptions, VibrationExcitation};

#[test]
fn closed_loop_retunes_to_the_new_ambient_frequency() {
    // A fast controller so the whole loop fits in a debug-build test.
    let params = HarvesterParameters::practical_device();
    let excitation = VibrationExcitation::new(
        params.acceleration_amplitude,
        harvsim::blocks::FrequencyProfile::Step {
            initial_hz: 70.0,
            final_hz: 71.0,
            step_time_s: 0.05,
        },
    )
    .expect("excitation");
    let mut harvester = harvsim::TunableHarvester::new(params, excitation).expect("harvester");
    let controller = ControllerConfig {
        watchdog_period_s: 0.3,
        energy_threshold_v: 2.0,
        frequency_tolerance_hz: 0.25,
        measurement_duration_s: 0.05,
        tuning_rate_hz_per_s: 10.0,
        tuning_update_interval_s: 0.02,
    };
    let sim = MixedSignalSimulation::new(SimulationEngine::StateSpace(SolverOptions {
        record_interval: 2e-3,
        ..Default::default()
    }))
    .expect("simulation");
    let result = sim.run(&mut harvester, controller, 1.2, 2.6).expect("run");

    assert!(
        (harvester.resonant_frequency_hz() - 71.0).abs() < 0.2,
        "resonance should track the ambient frequency, got {}",
        harvester.resonant_frequency_hz()
    );
    assert_eq!(harvester.load_mode(), LoadMode::Sleep, "the run ends back in sleep mode");
    assert!(!result.control_events.is_empty());
    // The recorded control events show the Eq. 16 load modes being exercised.
    assert!(result
        .control_events
        .iter()
        .any(|event| event.load_mode == LoadMode::Tuning || event.load_mode == LoadMode::Sleep));
}

#[test]
fn insufficient_energy_defers_tuning() {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.5;
    scenario.frequency_step_time_s = 0.05;
    scenario.initial_supercap_voltage = 0.8; // well below the 2.2 V threshold
    scenario.controller.watchdog_period_s = 0.2;
    let outcome = scenario.run().expect("scenario runs");
    assert!(
        (outcome.harvester.resonant_frequency_hz() - 70.0).abs() < 1e-9,
        "no tuning should happen with an empty store"
    );
}

#[test]
fn eq12_tuning_relation_holds_in_the_model() {
    let params = HarvesterParameters::practical_device();
    // Round-trip through Eq. 12 for the paper's maximum 14 Hz shift.
    let force = params.tuning_force_for_frequency(84.0);
    assert!(force > 0.0 && force <= params.max_tuning_force);
    let back = params.tuned_frequency_for_force(force);
    assert!((back - 84.0).abs() < 1e-9);
    // The effective stiffness scales with the square of the frequency ratio.
    let mut harvester =
        harvsim::TunableHarvester::with_constant_excitation(params.clone(), 70.0).expect("builds");
    harvester.set_resonant_frequency(77.0);
    let ratio = harvester.microgenerator().effective_stiffness() / params.spring_stiffness();
    assert!((ratio - (77.0f64 / 70.0).powi(2)).abs() < 1e-6);
}
