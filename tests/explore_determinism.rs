//! Determinism pins for the design-space explorer (DESIGN.md §12).
//!
//! Two contracts are pinned here:
//!
//! 1. **Scheduler independence** — the same `GridSpec` + seed produces
//!    bit-identical per-point results and an identical Pareto front whether
//!    the grid runs on 1 worker or on a steal-heavy pool. This is the payoff
//!    of the fixed-donor chain design: the warm-start donor of every point
//!    is decided by the grid (nearest preceding completed point along the
//!    innermost axis), never by execution order.
//! 2. **Warm-start fidelity** — warm-started points land within the 2e-4 V
//!    deviation gate of cold-started references: adoption copies only the
//!    fast states and keeps the supercapacitor branches at the point's own
//!    pre-charge, so warmth is a solver head start, not a different answer.

use harvsim::{Explorer, GridSpec, ScenarioConfig, SweepParameter};

fn quick_base() -> ScenarioConfig {
    let mut base = ScenarioConfig::scenario1();
    base.duration_s = 0.06;
    base.frequency_step_time_s = 0.02;
    base
}

/// 4 chains × 3 points — enough chains that a 4-worker pool actually steals.
fn pinned_spec() -> GridSpec {
    GridSpec::new(quick_base())
        .axis(SweepParameter::AccelerationAmplitude, &[0.45, 0.55, 0.65, 0.75])
        .axis(SweepParameter::InitialSupercapVoltage, &[2.3, 2.5, 2.7])
}

#[test]
fn one_worker_and_a_steal_heavy_pool_agree_bit_for_bit() {
    let sequential = Explorer::new(pinned_spec()).workers(1).run().unwrap();
    let stolen = Explorer::new(pinned_spec()).workers(4).run().unwrap();

    assert_eq!(sequential.rows.len(), 12);
    assert_eq!(stolen.rows.len(), 12);
    assert_eq!(sequential.completed, 12);
    assert_eq!(stolen.completed, 12);
    // Chain heads cold-start, all successors warm-start — on both schedules.
    assert_eq!(sequential.cold_starts, 4);
    assert_eq!(stolen.cold_starts, 4);
    assert_eq!(sequential.warm_hits, 8);
    assert_eq!(stolen.warm_hits, 8);

    for (a, b) in sequential.rows.iter().zip(&stolen.rows) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.values, b.values);
        assert_eq!(a.warm, b.warm, "warmth of {} depends on the schedule", a.label);
        let (ma, mb) = (a.metrics().unwrap(), b.metrics().unwrap());
        // Every deterministic field must match exactly; `wall_s` is the one
        // intentionally nondeterministic field (and exactly why the Pareto
        // front prices run cost in steps, not seconds).
        assert_eq!(ma.steps, mb.steps, "step count of {} diverged", a.label);
        assert_eq!(ma.energy_gain_j.to_bits(), mb.energy_gain_j.to_bits());
        assert_eq!(ma.dip_v.to_bits(), mb.dip_v.to_bits());
        assert_eq!(ma.v_first.to_bits(), mb.v_first.to_bits());
        assert_eq!(ma.v_last.to_bits(), mb.v_last.to_bits());
        assert_eq!(ma.rms_after_uw.to_bits(), mb.rms_after_uw.to_bits());
        assert_eq!(ma.final_state.len(), mb.final_state.len());
        for (xa, xb) in ma.final_state.iter().zip(&mb.final_state) {
            assert_eq!(xa.to_bits(), xb.to_bits(), "final state of {} diverged", a.label);
        }
    }
    assert_eq!(sequential.pareto_front, stolen.pareto_front);
    assert!(!sequential.pareto_front.is_empty());
}

#[test]
fn warm_starts_stay_within_the_deviation_gate_of_cold_references() {
    // Paper-scale storage (250× the default supercapacitances) so the
    // supercap is the slow reservoir the warm-start design assumes.
    let spec = || {
        GridSpec::new(quick_base())
            .axis(SweepParameter::StorageScale, &[250.0])
            .axis(SweepParameter::AccelerationAmplitude, &[0.5, 0.7])
            .axis(SweepParameter::InitialSupercapVoltage, &[2.4, 2.5, 2.6])
    };
    let warm = Explorer::new(spec()).workers(2).run().unwrap();
    let cold = Explorer::new(spec()).workers(2).warm_start(false).run().unwrap();

    assert_eq!(warm.completed, 6);
    assert_eq!(cold.completed, 6);
    assert!(warm.warm_hits > 0, "the grid must actually exercise warm starts");
    assert_eq!(cold.warm_hits, 0);

    for (w, c) in warm.rows.iter().zip(&cold.rows) {
        assert_eq!(w.index, c.index);
        let (mw, mc) = (w.metrics().unwrap(), c.metrics().unwrap());
        let deviation = (mw.v_last - mc.v_last).abs();
        assert!(
            deviation <= 2e-4,
            "warm-started {} deviates {deviation:e} V from its cold reference",
            w.label
        );
    }
}
