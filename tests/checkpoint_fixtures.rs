//! Golden checkpoint fixtures: canonical v1 frames committed under
//! `tests/fixtures/`, with tests that today's code still loads them and
//! resumes **bit-identically** to a fresh uninterrupted run of the embedded
//! scenario — the backward-compatibility contract for the wire format. The
//! version-skew half of the contract is pinned too: a frame whose format
//! version is incremented, or whose rebuild digest no longer matches its
//! rebuild section, is rejected with a typed [`harvsim::CheckpointError`],
//! never a panic and never a quietly different simulation.
//!
//! Regenerating the fixtures is only legitimate when the format version is
//! deliberately bumped; run
//! `cargo test --test checkpoint_fixtures -- --ignored` and commit the new
//! bytes together with the version change.

use std::path::PathBuf;

use harvsim::{
    fnv1a64, CheckpointError, CoreError, EnvelopeProbe, Probe, ScenarioConfig, Session, Simulation,
    WaveformProbe, CHECKPOINT_VERSION,
};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The scenario both fixtures embed. Must not change while the format
/// version stays at 1 — the fixtures pin its encoding.
fn fixture_scenario() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.12;
    scenario.frequency_step_time_s = 0.03;
    scenario.controller.watchdog_period_s = 0.04;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.01;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.005;
    scenario.label = Some("fixture".into());
    scenario
}

fn baseline_fixture_scenario() -> ScenarioConfig {
    let mut scenario = fixture_scenario();
    scenario.duration_s = 0.08;
    scenario.engine = harvsim::SimulationEngine::NewtonRaphson(harvsim::BaselineOptions::default());
    scenario
}

/// Fresh probes of the types the state-space fixture was saved with.
/// Construction parameters are irrelevant — restore overwrites them from the
/// saved blobs.
fn fixture_probes() -> Vec<Box<dyn Probe>> {
    vec![Box::new(WaveformProbe::new(1.0)), Box::new(EnvelopeProbe::terminal(0))]
}

/// Recomputes and rewrites the trailing frame checksum — used to forge
/// header skews that are *internally consistent* frames, so the tests reach
/// the version/digest checks instead of tripping the checksum first.
fn reseal(frame: &mut [u8]) {
    let body = frame.len() - 8;
    let checksum = fnv1a64(&frame[..body]);
    frame[body..].copy_from_slice(&checksum.to_le_bytes());
}

fn load_fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {} ({err}); regenerate with \
             `cargo test --test checkpoint_fixtures -- --ignored` ONLY on a \
             deliberate format-version bump",
            path.display()
        )
    })
}

#[test]
fn state_space_fixture_loads_and_resumes_bit_identically() {
    let bytes = load_fixture("checkpoint_v1_state_space.bin");
    let (mut resumed, ids) =
        Session::restore_with_probes(&bytes, fixture_probes()).expect("golden fixture loads");
    assert!(!resumed.is_finished());
    resumed.run_to_end().expect("resumed run completes");

    // Reference: the same scenario run uninterrupted, observed identically.
    let scenario = fixture_scenario();
    let mut reference = Simulation::from_config(scenario.clone()).start().unwrap();
    let ref_capture = reference.add_probe(WaveformProbe::new(match &scenario.engine {
        harvsim::SimulationEngine::StateSpace(options) => options.record_interval,
        harvsim::SimulationEngine::NewtonRaphson(options) => options.record_interval,
    }));
    let vc = reference.harvester().storage_voltage_net();
    let ref_envelope = reference.add_probe(EnvelopeProbe::terminal(vc));
    reference.run_to_end().unwrap();

    let resumed_report = resumed.report();
    let reference_report = reference.report();
    assert_eq!(resumed_report.final_state, reference_report.final_state);
    assert_eq!(
        resumed_report.engine_stats.state_space.steps,
        reference_report.engine_stats.state_space.steps
    );
    assert_eq!(
        resumed_report.engine_stats.state_space.steps_by_order,
        reference_report.engine_stats.state_space.steps_by_order
    );
    assert_eq!(resumed_report.digital_events, reference_report.digital_events);
    assert_eq!(resumed_report.control_events, reference_report.control_events);

    // Probe state carried through the fixture: the dense capture equals the
    // uninterrupted capture sample for sample, and the envelope agrees.
    let waveform = resumed.probe::<WaveformProbe>(ids[0]).expect("typed waveform");
    let ref_waveform = reference.probe::<WaveformProbe>(ref_capture).unwrap();
    assert_eq!(waveform.states().times(), ref_waveform.states().times());
    for (sample, expected) in waveform.states().states().iter().zip(ref_waveform.states().states())
    {
        assert_eq!(sample, expected);
    }
    let envelope = resumed.probe::<EnvelopeProbe>(ids[1]).expect("typed envelope");
    let ref_env = reference.probe::<EnvelopeProbe>(ref_envelope).unwrap();
    assert_eq!(envelope.min().to_bits(), ref_env.min().to_bits());
    assert_eq!(envelope.max().to_bits(), ref_env.max().to_bits());
    assert_eq!(envelope.samples(), ref_env.samples());
}

#[test]
fn baseline_fixture_loads_and_resumes_bit_identically() {
    let bytes = load_fixture("checkpoint_v1_baseline.bin");
    let mut resumed = Session::restore(&bytes).expect("golden fixture loads");
    resumed.run_to_end().expect("resumed run completes");

    let mut reference = Simulation::from_config(baseline_fixture_scenario()).start().unwrap();
    reference.run_to_end().unwrap();

    let resumed_report = resumed.report();
    let reference_report = reference.report();
    assert_eq!(resumed_report.final_state, reference_report.final_state);
    assert_eq!(
        resumed_report.engine_stats.baseline.steps,
        reference_report.engine_stats.baseline.steps
    );
    assert_eq!(
        resumed_report.engine_stats.baseline.newton_iterations,
        reference_report.engine_stats.baseline.newton_iterations
    );
    assert_eq!(resumed_report.control_events, reference_report.control_events);
}

/// An incremented format version is rejected with the typed version-skew
/// error even when the frame is otherwise internally consistent (checksum
/// resealed) — readers refuse to guess at layouts they were not built for.
#[test]
fn incremented_format_version_is_rejected_typed() {
    let mut bytes = load_fixture("checkpoint_v1_state_space.bin");
    let skewed = CHECKPOINT_VERSION + 1;
    bytes[4..6].copy_from_slice(&skewed.to_le_bytes());
    reseal(&mut bytes);
    match Session::restore(&bytes) {
        Err(CoreError::Checkpoint(CheckpointError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, skewed);
            assert_eq!(supported, CHECKPOINT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// A header digest that no longer matches the rebuild section — a doctored
/// configuration or an options-encoding skew — is the typed digest error,
/// not a silently different simulation.
#[test]
fn mismatched_rebuild_digest_is_rejected_typed() {
    let mut bytes = load_fixture("checkpoint_v1_state_space.bin");
    bytes[8] ^= 0x5a; // corrupt the stored digest, keep the frame consistent
    reseal(&mut bytes);
    match Session::restore(&bytes) {
        Err(CoreError::Checkpoint(CheckpointError::DigestMismatch { .. })) => {}
        other => panic!("expected DigestMismatch, got {other:?}"),
    }
}

/// An unknown payload kind is its own typed rejection.
#[test]
fn unknown_payload_kind_is_rejected_typed() {
    let mut bytes = load_fixture("checkpoint_v1_state_space.bin");
    bytes[6] = 0x7f;
    reseal(&mut bytes);
    match Session::restore(&bytes) {
        Err(CoreError::Checkpoint(CheckpointError::UnsupportedKind(0x7f))) => {}
        other => panic!("expected UnsupportedKind, got {other:?}"),
    }
}

/// Restoring with the wrong probe complement is a typed error, not a
/// silently probe-less resume.
#[test]
fn probe_complement_mismatch_is_rejected_typed() {
    let bytes = load_fixture("checkpoint_v1_state_space.bin");
    // Too few probes.
    match Session::restore(&bytes) {
        Err(CoreError::Checkpoint(CheckpointError::Malformed(_))) => {}
        other => panic!("expected Malformed for missing probes, got {other:?}"),
    }
    // Right count, wrong types (blob tags do not match).
    let wrong: Vec<Box<dyn Probe>> =
        vec![Box::new(EnvelopeProbe::terminal(0)), Box::new(WaveformProbe::new(1.0))];
    match Session::restore_with_probes(&bytes, wrong) {
        Err(CoreError::Checkpoint(CheckpointError::Malformed(_))) => {}
        other => panic!("expected Malformed for wrong probe types, got {other:?}"),
    }
}

/// Regenerates the committed fixtures. `#[ignore]`d: run explicitly (and
/// commit the result) ONLY when the wire-format version is deliberately
/// bumped — on any other day, a failing fixture test means the format
/// changed without a version bump, and the fix is in the code, not here.
#[test]
#[ignore = "writes tests/fixtures/*.bin; run only on a deliberate format-version bump"]
fn regenerate_fixtures() {
    std::fs::create_dir_all(fixture_dir()).expect("fixture dir");

    let mut session = Simulation::from_config(fixture_scenario()).start().unwrap();
    session.add_probe(WaveformProbe::new(match &fixture_scenario().engine {
        harvsim::SimulationEngine::StateSpace(options) => options.record_interval,
        harvsim::SimulationEngine::NewtonRaphson(options) => options.record_interval,
    }));
    let vc = session.harvester().storage_voltage_net();
    session.add_probe(EnvelopeProbe::terminal(vc));
    session.run_until(0.05).unwrap();
    let bytes = session.checkpoint().unwrap();
    std::fs::write(fixture_dir().join("checkpoint_v1_state_space.bin"), &bytes).unwrap();

    let mut session = Simulation::from_config(baseline_fixture_scenario()).start().unwrap();
    session.run_until(0.03).unwrap();
    let bytes = session.checkpoint().unwrap();
    std::fs::write(fixture_dir().join("checkpoint_v1_baseline.bin"), &bytes).unwrap();
}
