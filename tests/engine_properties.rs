//! Property-based integration tests of the simulation engine's key invariants:
//! stability of accepted steps (Eq. 7), consistency of terminal elimination
//! (Eq. 4) and robustness of the assembled model across parameter variations.

use harvsim::core::assembly::AnalogueSystem;
use harvsim::linalg::{eigen, DMatrix, DVector};
use harvsim::{HarvesterParameters, TunableHarvester};
use proptest::prelude::*;

fn harvester_with(mass_scale: f64, cap_scale: f64, frequency: f64) -> TunableHarvester {
    let mut params = HarvesterParameters::practical_device();
    params.proof_mass *= mass_scale;
    params.stage_capacitance *= cap_scale;
    TunableHarvester::with_constant_excitation(params, frequency).expect("harvester builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eq. 4 consistency: whatever the operating point, the terminal vector
    /// returned by the elimination step satisfies the algebraic constraints.
    #[test]
    fn terminal_elimination_satisfies_the_constraints(
        mass_scale in 0.5f64..2.0,
        cap_scale in 0.5f64..2.0,
        frequency in 55.0f64..90.0,
        supercap_v in 0.5f64..3.0,
    ) {
        let harvester = harvester_with(mass_scale, cap_scale, frequency);
        let x = harvester.initial_state(supercap_v).expect("initial state");
        let y_guess = DVector::zeros(harvester.net_count());
        let lin = harvester.linearise_global(0.0, &x, &y_guess).expect("linearisation");
        let y = lin.solve_terminals(&x).expect("elimination");
        // Residual of the algebraic part: Jyx·x + Jyy·y + g ≈ 0.
        let mut residual = lin.jyx.mul_vector(&x);
        residual += &lin.jyy.mul_vector(&y);
        residual += &lin.gy;
        prop_assert!(residual.norm_inf() < 1e-6, "constraint residual {}", residual.norm_inf());
    }

    /// Eq. 7: the step limit chosen by the engine's stability rules keeps the
    /// spectral radius of I + h·A inside the unit circle (up to round-off).
    #[test]
    fn stability_rules_respect_eq7(
        mass_scale in 0.5f64..2.0,
        frequency in 55.0f64..90.0,
    ) {
        let harvester = harvester_with(mass_scale, 1.0, frequency);
        let x = harvester.initial_state(2.5).expect("initial state");
        let y_guess = DVector::zeros(harvester.net_count());
        let lin = harvester.linearise_global(0.0, &x, &y_guess).expect("linearisation");
        let a = lin.total_step_matrix().expect("total-step matrix");
        let rule = harvsim::ode::stability::StabilityRule::SpectralRadius { safety: 0.8 };
        if let Some(h) = harvsim::ode::stability::max_stable_step(&a, rule).expect("rule") {
            if h > 0.0 {
                let m = &DMatrix::identity(a.rows()) + &a.scaled(h);
                let rho = eigen::spectral_radius(&m).expect("spectral radius");
                prop_assert!(rho < 1.0 + 1e-6, "rho(I + hA) = {rho} at h = {h}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bootstrap invariant: across initial store charges and step times, a
    /// short Scenario-1 run keeps the supercapacitor voltage finite and
    /// non-negative at every recorded sample (the store is passive — nothing
    /// in the model can drive it below ground).
    #[test]
    fn supercap_voltage_stays_physical_in_short_runs(
        initial_v in 0.5f64..3.2,
        step_fraction in 0.2f64..0.7,
    ) {
        let mut scenario = harvsim::ScenarioConfig::scenario1();
        scenario.duration_s = 0.15;
        scenario.frequency_step_time_s = scenario.duration_s * step_fraction;
        scenario.initial_supercap_voltage = initial_v;
        let outcome = scenario.run().expect("short scenario run succeeds");
        let offset = outcome.harvester.supercap_state_offset();
        prop_assert!(outcome.states().len() > 10, "too few samples recorded");
        for (t, state) in outcome.states().times().iter().zip(outcome.states().states()) {
            for branch in 0..3 {
                let v = state[offset + branch];
                prop_assert!(v.is_finite(), "branch {branch} non-finite at t = {t}");
                prop_assert!(v >= -1e-9, "branch {branch} went negative ({v}) at t = {t}");
            }
        }
    }
}

#[test]
fn assembled_model_is_passive_at_rest() {
    // With no excitation-phase energy yet injected (t = 0 crossing), all
    // eigenvalues of the total-step matrix must lie in the closed left half
    // plane: the analogue blocks are passive, the property the paper relies on
    // for its diagonal-dominance argument.
    let harvester = harvester_with(1.0, 1.0, 70.0);
    let x = harvester.initial_state(2.5).expect("initial state");
    let y_guess = DVector::zeros(harvester.net_count());
    let lin = harvester.linearise_global(0.0, &x, &y_guess).expect("linearisation");
    let a = lin.total_step_matrix().expect("total-step matrix");
    let eigs = eigen::eigenvalues(&a).expect("eigenvalues");
    for eig in eigs {
        assert!(eig.re <= 1e-6, "unstable analogue mode: {} + {}i", eig.re, eig.im);
    }
}
