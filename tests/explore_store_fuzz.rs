//! Kill/resume torture for the explorer's append-only result store, in the
//! style of the `checkpoint_fuzz.rs` battery: truncate the file at offsets
//! sampled across the whole range (including every frame boundary ±1) and
//! flip single bytes at arbitrary offsets, then `resume`. The contract:
//!
//! * every intact record is recovered bit-identically (never re-run),
//! * the damaged remainder is re-executed, so the resumed grid always
//!   completes with balanced accounting,
//! * a corrupt row is **never** resurrected — any record the scanner accepts
//!   must match the uncorrupted golden run exactly,
//! * a store written for a *different* grid digest fails typed, never mixes.

use std::path::PathBuf;

use harvsim::{
    CheckpointError, CoreError, ExploreReport, Explorer, GridSpec, PointRecord, ScenarioConfig,
    SweepParameter,
};

fn unique_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("harvsim-explorefuzz-{tag}-{}-{n}.hvck", std::process::id()))
}

fn quick_base() -> ScenarioConfig {
    let mut base = ScenarioConfig::scenario1();
    base.duration_s = 0.05;
    base.frequency_step_time_s = 0.015;
    base
}

/// 2 chains × 3 points — small enough that the exhaustive truncation sweep
/// stays fast, structured enough that chains, warm starts and multi-record
/// recovery are all exercised.
fn spec() -> GridSpec {
    GridSpec::new(quick_base())
        .axis(SweepParameter::AccelerationAmplitude, &[0.5, 0.7])
        .axis(SweepParameter::InitialSupercapVoltage, &[2.4, 2.5, 2.6])
}

fn assert_matches_golden(resumed: &ExploreReport, golden: &ExploreReport, what: &str) {
    assert_eq!(resumed.offered, 6, "{what}");
    assert_eq!(resumed.completed, 6, "{what}: resumed grid must complete");
    assert_eq!(resumed.failed, 0, "{what}");
    assert_eq!(resumed.skipped, 0, "{what}");
    assert_eq!(resumed.rows.len(), golden.rows.len(), "{what}");
    for (row, gold) in resumed.rows.iter().zip(&golden.rows) {
        assert_eq!(row.index, gold.index, "{what}");
        assert_eq!(row.label, gold.label, "{what}");
        // Recovered-or-re-run, every row must carry the golden physics: a
        // resurrected corrupt row would diverge here.
        let (m, g) = (row.metrics().unwrap(), gold.metrics().unwrap());
        assert_eq!(m.steps, g.steps, "{what}: {} diverged", row.label);
        assert_eq!(
            m.v_last.to_bits(),
            g.v_last.to_bits(),
            "{what}: {} resumed to a different final voltage",
            row.label
        );
        for (a, b) in m.final_state.iter().zip(&g.final_state) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {} final state diverged", row.label);
        }
    }
    assert_eq!(resumed.pareto_front, golden.pareto_front, "{what}");
}

/// Rows recovered from the store must be the golden rows, bit for bit.
fn assert_recovered_rows_are_golden(resumed: &ExploreReport, golden: &ExploreReport, what: &str) {
    for row in resumed.rows.iter().filter(|row| row.recovered) {
        let gold: &PointRecord =
            golden.rows.iter().find(|gold| gold.index == row.index).expect("golden row exists");
        assert_eq!(
            row.metrics().unwrap().final_state,
            gold.metrics().unwrap().final_state,
            "{what}: recovered row {} is not the stored golden row",
            row.label
        );
    }
}

#[test]
fn every_truncation_offset_resumes_to_the_golden_grid() {
    let path = unique_path("trunc");
    let golden = Explorer::new(spec()).store(&path).run().unwrap();
    assert_eq!(golden.completed, 6);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!bytes.is_empty());

    // A kill can land anywhere: sample the whole range densely and hit
    // every frame boundary exactly (and one byte either side of it) — the
    // offsets where an off-by-one in the scanner would hide.
    let frame = bytes.len() / 6;
    let mut cuts: Vec<usize> = (0..=bytes.len()).step_by(17).collect();
    for k in 0..=6 {
        let boundary = k * frame;
        cuts.extend([boundary.saturating_sub(1), boundary, boundary + 1]);
    }
    cuts.retain(|cut| *cut <= bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        let what = format!("truncation to {cut}/{} bytes", bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let resumed = Explorer::new(spec()).store(&path).resume().unwrap();
        assert_matches_golden(&resumed, &golden, &what);
        assert_recovered_rows_are_golden(&resumed, &golden, &what);
        // A full prefix of intact frames is recovered, not re-run: at `cut`
        // = n whole frames the scanner must hand back those n records.
        assert!(
            resumed.resumed >= cut / frame.max(1) && resumed.resumed <= 6,
            "{what}: recovered {} of 6 rows",
            resumed.resumed
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_bytes_drop_only_the_damaged_records() {
    let path = unique_path("flip");
    let golden = Explorer::new(spec()).store(&path).run().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // A spread of single-byte flips across the whole file (every 13th
    // offset keeps the battery fast while still hitting every frame
    // section: magic, header, payload, checksum).
    for at in (0..bytes.len()).step_by(13) {
        let what = format!("flip at byte {at}/{}", bytes.len());
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x55;
        std::fs::write(&path, &corrupt).unwrap();
        match Explorer::new(spec()).store(&path).resume() {
            Ok(resumed) => {
                assert_matches_golden(&resumed, &golden, &what);
                assert_recovered_rows_are_golden(&resumed, &golden, &what);
                assert!(
                    resumed.resumed < 6 || resumed.dropped_regions == 0,
                    "{what}: all 6 rows recovered despite a dropped region"
                );
            }
            // A flip anywhere — including inside a stored digest — breaks
            // the frame's whole-file checksum, so the frame is dropped and
            // re-run rather than refused; resume must always succeed here.
            Err(err) => panic!("{what}: resume failed: {err}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn double_corruption_and_garbage_prefixes_still_resync() {
    let path = unique_path("resync");
    let golden = Explorer::new(spec()).store(&path).run().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Garbage prepended before the first frame, a flip in the middle, and a
    // torn tail — all at once.
    let mut mangled = b"not a frame at all".to_vec();
    mangled.extend_from_slice(&bytes);
    let mid = mangled.len() / 2;
    mangled[mid] ^= 0xff;
    mangled.truncate(mangled.len() - 3);
    std::fs::write(&path, &mangled).unwrap();
    let resumed = Explorer::new(spec()).store(&path).resume().unwrap();
    assert_matches_golden(&resumed, &golden, "garbage prefix + flip + torn tail");
    assert!(resumed.dropped_regions >= 1, "the scanner must report the corrupt regions");
    assert!(resumed.resumed >= 1, "intact frames between the damage must survive");
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_store_for_a_different_grid_is_refused_typed() {
    let path = unique_path("foreign");
    Explorer::new(spec()).store(&path).run().unwrap();

    // Same store file, different grid (one more acceleration value).
    let other = GridSpec::new(quick_base())
        .axis(SweepParameter::AccelerationAmplitude, &[0.5, 0.7, 0.9])
        .axis(SweepParameter::InitialSupercapVoltage, &[2.4, 2.5, 2.6]);
    match Explorer::new(other).store(&path).resume() {
        Err(CoreError::Checkpoint(CheckpointError::DigestMismatch { .. })) => {}
        Err(other) => panic!("expected a digest mismatch, got {other:?}"),
        Ok(_) => panic!("a foreign store was silently adopted"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_without_prior_store_runs_fresh_and_report_only_skips_execution() {
    let path = unique_path("fresh");
    // Resume against a store that does not exist yet = a fresh run.
    let report = Explorer::new(spec()).store(&path).resume().unwrap();
    assert_eq!(report.completed, 6);
    assert_eq!(report.resumed, 0);

    // Report-only recomputes from the store without executing anything.
    let replay = Explorer::new(spec()).store(&path).report_only().unwrap();
    assert_eq!(replay.resumed, 6);
    assert_eq!(replay.completed, 6);
    assert_eq!(replay.threads_used, 0, "report-only must not execute points");
    assert_eq!(replay.pareto_front, report.pareto_front);
    std::fs::remove_file(&path).ok();
}
