//! Deadline classes in the batch scheduler, pinned end to end: EDF order
//! within a class, strict priority across classes, the starvation-proof
//! aging bound, deterministic admission-control shedding, per-class billing
//! and queue-latency ledgers that balance exactly, typed rejection of
//! malformed deadlines — and bit-identity of every scheduled result against
//! its uninterrupted sequential run, classes notwithstanding.

use std::time::Duration;

use harvsim::{
    CoreError, JobClass, JobRequest, ScenarioConfig, ServiceError, ServiceOptions, ServiceReport,
    SessionService, Simulation,
};

/// A small quick job (finishes in very few slices at the tests' slice).
fn quick_job(k: usize) -> Simulation {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.012;
    scenario.frequency_step_time_s = 0.004;
    scenario.initial_supercap_voltage = 2.5 + k as f64 * 1e-4;
    scenario.label = Some(format!("class-job-{k}"));
    Simulation::from_config(scenario)
}

fn single_worker(aging_passes: u64) -> SessionService {
    SessionService::new(ServiceOptions {
        workers: Some(1),
        slice_s: 0.05, // one slice per quick job: pop order == finish order
        aging_passes,
        ..ServiceOptions::default()
    })
    .expect("service")
}

/// first_scheduled_ordinal of every finished outcome, in submission order.
fn ordinals(report: &ServiceReport) -> Vec<u64> {
    report
        .outcomes
        .iter()
        .map(|outcome| outcome.first_scheduled_ordinal.expect("job was scheduled"))
        .collect()
}

#[test]
fn deadlines_order_scheduling_within_a_class() {
    // Submission order is the *reverse* of the deadlines; deadline-less
    // jobs go in the middle of the submission order. With one worker and
    // one slice per job, the scheduling ordinals must follow the deadlines,
    // with the deadline-less jobs FIFO after every deadline-carrying one.
    let deadlines: Vec<Option<f64>> =
        vec![Some(9.0), Some(7.0), None, Some(1.0), None, Some(4.0), Some(0.5)];
    let jobs: Vec<JobRequest> = deadlines
        .iter()
        .enumerate()
        .map(|(k, deadline)| {
            let request = JobRequest::new(quick_job(k));
            match deadline {
                Some(d) => request.deadline_s(*d),
                None => request,
            }
        })
        .collect();
    let report = single_worker(8).run_jobs(jobs);
    let ordinals = ordinals(&report);

    // Expected pop order by submission index: deadlines 0.5, 1, 4, 7, 9,
    // then the two deadline-less jobs in submission (FIFO) order.
    let expected_order = [6usize, 3, 5, 1, 0, 2, 4];
    let mut by_ordinal: Vec<(u64, usize)> =
        ordinals.iter().copied().zip(0..deadlines.len()).collect();
    by_ordinal.sort();
    let actual_order: Vec<usize> = by_ordinal.into_iter().map(|(_, index)| index).collect();
    assert_eq!(
        actual_order, expected_order,
        "EDF-within-class pop order broken (ordinals {ordinals:?})"
    );
}

#[test]
fn classes_schedule_in_strict_priority_when_aging_is_lax() {
    // Submit in inverted priority order; with a huge aging bound the pop
    // order must be pure class priority: interactive, batch, best-effort.
    let classes = [
        JobClass::BestEffort,
        JobClass::BestEffort,
        JobClass::Batch,
        JobClass::Batch,
        JobClass::Interactive,
        JobClass::Interactive,
    ];
    let jobs: Vec<JobRequest> = classes
        .iter()
        .enumerate()
        .map(|(k, class)| JobRequest::new(quick_job(k)).class(*class))
        .collect();
    let report = single_worker(1_000_000).run_jobs(jobs);
    let ordinals = ordinals(&report);
    let rank = |class: JobClass| match class {
        JobClass::Interactive => 0,
        JobClass::Batch => 1,
        JobClass::BestEffort => 2,
    };
    for (i, a) in classes.iter().enumerate() {
        for (j, b) in classes.iter().enumerate() {
            if rank(*a) < rank(*b) {
                assert!(
                    ordinals[i] < ordinals[j],
                    "{a} job {i} (ordinal {}) must schedule before {b} job {j} (ordinal {})",
                    ordinals[i],
                    ordinals[j]
                );
            }
        }
    }
}

#[test]
fn aging_bounds_starvation_of_lower_classes() {
    // One best-effort job submitted first, then a wall of interactive jobs.
    // With `aging_passes = 2` the best-effort job may be passed over at most
    // a couple of times before promotion; strict priority would have
    // scheduled it dead last (ordinal 12).
    const WALL: usize = 12;
    let mut jobs = vec![JobRequest::new(quick_job(0)).class(JobClass::BestEffort)];
    for k in 1..=WALL {
        jobs.push(JobRequest::new(quick_job(k)).class(JobClass::Interactive));
    }
    let report = single_worker(2).run_jobs(jobs);
    let aged = ordinals(&report);
    assert!(
        aged[0] <= 4,
        "aging failed to rescue the best-effort job: scheduled at ordinal {} of {}",
        aged[0],
        WALL
    );

    // Control experiment: with a lax bound the same workload starves it to
    // the very end — proving the ordinal above is the aging at work.
    let mut jobs = vec![JobRequest::new(quick_job(0)).class(JobClass::BestEffort)];
    for k in 1..=WALL {
        jobs.push(JobRequest::new(quick_job(k)).class(JobClass::Interactive));
    }
    let starved = single_worker(1_000_000).run_jobs(jobs);
    assert_eq!(ordinals(&starved)[0], WALL as u64, "strict priority control run");
}

#[test]
fn per_class_ledgers_balance_exactly() {
    // A mixed-class batch with a capacity that sheds deterministically:
    // jobs are admitted in submission order, so with capacity 2 the third
    // and later jobs of each class are shed.
    let classes = [
        JobClass::Interactive,
        JobClass::Interactive,
        JobClass::Interactive, // shed
        JobClass::Batch,
        JobClass::Batch,
        JobClass::BestEffort,
        JobClass::BestEffort,
        JobClass::BestEffort, // shed
        JobClass::BestEffort, // shed
    ];
    let jobs: Vec<JobRequest> = classes
        .iter()
        .enumerate()
        .map(|(k, class)| JobRequest::new(quick_job(k)).class(*class))
        .collect();
    let service = SessionService::new(ServiceOptions {
        workers: Some(2),
        slice_s: 0.004,
        class_capacity: Some(2),
        ..ServiceOptions::default()
    })
    .expect("service");
    let report = service.run_jobs(jobs);

    // Offer/admission identities, overall and per class.
    assert_eq!(report.shed, 3);
    for class in JobClass::ALL {
        let ledger = &report.classes[class.index()];
        assert_eq!(
            ledger.admitted + ledger.shed,
            ledger.offered,
            "{class}: every offer is admitted or shed"
        );
        assert_eq!(ledger.finished, ledger.admitted, "{class}: uninterrupted batch finishes");

        // The class ledger must equal the sum over its outcomes — exactly,
        // not approximately: billing is conserved.
        let outcomes: Vec<_> =
            report.outcomes.iter().filter(|outcome| outcome.class == class).collect();
        assert_eq!(ledger.offered, outcomes.len());
        let billed: Duration = outcomes.iter().map(|o| o.billed_engine_time).sum();
        let latency: Duration = outcomes.iter().map(|o| o.queue_latency).sum();
        assert_eq!(ledger.billed, billed, "{class}: billing ledger out of balance");
        assert_eq!(ledger.queue_latency, latency, "{class}: latency ledger out of balance");
    }
    let class_billed: Duration = report.classes.iter().map(|c| c.billed).sum();
    assert_eq!(report.total_billed, class_billed, "class ledgers must sum to the total");
    assert_eq!(
        report.shed,
        report.classes.iter().map(|c| c.shed).sum::<usize>(),
        "shed count must equal the class ledgers"
    );

    // Shed jobs: typed, zero slices, zero billing, never scheduled.
    for (k, outcome) in report.outcomes.iter().enumerate() {
        let shed = matches!(outcome.result, Err(ServiceError::Overloaded { .. }));
        assert_eq!(shed, [2usize, 7, 8].contains(&k), "job {k} shed status");
        if shed {
            assert_eq!(outcome.slices, 0, "shed job {k} consumed a slice");
            assert_eq!(outcome.billed_engine_time, Duration::ZERO, "shed job {k} was billed");
            assert!(outcome.first_scheduled_ordinal.is_none(), "shed job {k} was scheduled");
            if let Err(ServiceError::Overloaded { class, depth, capacity }) = &outcome.result {
                assert_eq!(*class, classes[k]);
                assert_eq!((*depth, *capacity), (2, 2));
            }
        }
    }
}

#[test]
fn class_mixes_do_not_disturb_bit_identity() {
    const JOBS: usize = 9;
    let references: Vec<_> = (0..JOBS)
        .map(|k| {
            let mut session = quick_job(k).start().expect("start");
            session.run_to_end().expect("run");
            session.report().final_state
        })
        .collect();
    let jobs: Vec<JobRequest> = (0..JOBS)
        .map(|k| {
            let request = JobRequest::new(quick_job(k)).class(JobClass::ALL[k % 3]);
            if k % 2 == 0 {
                request.deadline_s(k as f64 * 0.25)
            } else {
                request
            }
        })
        .collect();
    let service = SessionService::new(ServiceOptions {
        workers: Some(3),
        slice_s: 0.003,
        ..ServiceOptions::default()
    })
    .expect("service");
    let report = service.run_jobs(jobs);
    for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
        let job_report = outcome.result.as_ref().expect("job finished");
        assert_eq!(
            &job_report.final_state, reference,
            "job {k}: scheduling class/deadline changed the numerics"
        );
    }
}

#[test]
fn malformed_deadlines_are_rejected_typed() {
    for bad in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY] {
        let jobs = vec![
            JobRequest::new(quick_job(0)).deadline_s(bad),
            JobRequest::new(quick_job(1)).deadline_s(0.5),
        ];
        let report = single_worker(8).run_jobs(jobs);
        let outcome = &report.outcomes[0];
        match &outcome.result {
            Err(ServiceError::Session(CoreError::InvalidConfiguration(detail))) => {
                assert!(detail.contains("deadline"), "unhelpful rejection: {detail}");
            }
            other => panic!("deadline {bad} produced {other:?}"),
        }
        assert_eq!(outcome.slices, 0);
        assert_eq!(outcome.billed_engine_time, Duration::ZERO);
        // The healthy sibling is unaffected.
        assert!(report.outcomes[1].result.is_ok(), "valid job rode along fine");
    }
}
