//! Scheduler stress battery: one thousand sessions through the
//! [`harvsim::SessionService`] under a deliberately tiny resident-memory
//! budget, so almost every preemption becomes a checkpoint-evict/thaw cycle.
//! Pinned properties:
//!
//! * every job finishes, and its result is **bit-identical** to running the
//!   same scenario sequentially on one thread (final state, step counts,
//!   digital events, control actions);
//! * billing conserves: each job's billed engine time equals its own
//!   report's engine-time total, and the per-job bills sum to the service
//!   total — slice deltas telescope exactly because the counters ride
//!   inside the checkpoints;
//! * fairness: round-robin slicing gives every equal-length job the same
//!   number of slices (±1), so no session starves behind the queue;
//! * eviction accounting balances: every frozen job thaws exactly once per
//!   eviction.

use harvsim::core::mixed::ControlEvent;
use harvsim::linalg::DVector;
use harvsim::{ScenarioConfig, ServiceOptions, SessionService, Simulation, SimulationEngine};

const JOBS: usize = 1000;
const DURATION_S: f64 = 0.015;
const SLICE_S: f64 = 0.006; // => 3 slices per job (2 preemptions + finish)

/// Job `k`'s scenario: a short closed-loop run with a retune and watchdog
/// wakes inside the window, perturbed per job so no two jobs share a
/// trajectory (a swapped checkpoint would be caught).
fn job_scenario(k: usize) -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = DURATION_S;
    scenario.frequency_step_time_s = 0.005;
    scenario.controller.watchdog_period_s = 0.006;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.002;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.002;
    scenario.initial_supercap_voltage = 2.5 + k as f64 * 1e-4;
    // A sprinkle of Newton–Raphson jobs keeps both engines in the same pool.
    if k % 100 == 7 {
        scenario.engine = SimulationEngine::NewtonRaphson(Default::default());
    }
    scenario.label = Some(format!("job-{k}"));
    scenario
}

/// Plain-data extract of a sequential single-thread run, for cross-thread
/// comparison against the scheduled outcome.
struct Reference {
    final_state: DVector,
    state_space_steps: usize,
    baseline_steps: usize,
    digital_events: u64,
    control_events: Vec<ControlEvent>,
}

fn reference_for(k: usize) -> Reference {
    let mut session = Simulation::from_config(job_scenario(k)).start().expect("job starts");
    session.run_to_end().expect("job completes");
    let report = session.report();
    Reference {
        final_state: report.final_state,
        state_space_steps: report.engine_stats.state_space.steps,
        baseline_steps: report.engine_stats.baseline.steps,
        digital_events: report.digital_events,
        control_events: report.control_events,
    }
}

/// Sequential references for all jobs, computed on a plain thread-chunked
/// map (no service involved) to keep the test's wall clock sane.
fn sequential_references() -> Vec<Reference> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let chunk = JOBS.div_ceil(threads);
    let mut slots: Vec<Option<Reference>> = (0..JOBS).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = Some(reference_for(t * chunk + i));
                }
            });
        }
    });
    slots.into_iter().map(|slot| slot.expect("every reference computed")).collect()
}

#[test]
fn thousand_sessions_scheduled_under_memory_pressure_match_sequential() {
    let references = sequential_references();

    let service = SessionService::new(ServiceOptions {
        workers: None, // thread per core
        slice_s: SLICE_S,
        // ~6 resident frames' worth: with a full pool this forces the
        // checkpoint-evict/thaw path on nearly every preemption.
        resident_budget_bytes: Some(64 * 1024),
    })
    .expect("valid options");
    let jobs: Vec<Simulation> =
        (0..JOBS).map(|k| Simulation::from_config(job_scenario(k))).collect();
    let report = service.run(jobs);

    assert_eq!(report.outcomes.len(), JOBS);
    assert!(report.workers >= 1);
    assert!(report.evictions > 0, "the {}-byte budget must force checkpoint evictions", 64 * 1024);
    assert!(report.peak_resident_bytes > 0);

    let mut total_billed = std::time::Duration::ZERO;
    let mut total_restores = 0usize;
    let mut min_slices = usize::MAX;
    let mut max_slices = 0usize;
    for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
        assert_eq!(outcome.label.as_deref(), Some(format!("job-{k}").as_str()));
        let job_report = outcome
            .result
            .as_ref()
            .unwrap_or_else(|err| panic!("job {k} failed under the scheduler: {err}"));

        // Bit-identical to the sequential run of the same scenario.
        assert_eq!(
            job_report.final_state, reference.final_state,
            "job {k}: scheduled final state diverged from sequential"
        );
        assert_eq!(job_report.engine_stats.state_space.steps, reference.state_space_steps);
        assert_eq!(job_report.engine_stats.baseline.steps, reference.baseline_steps);
        assert_eq!(job_report.digital_events, reference.digital_events);
        assert_eq!(job_report.control_events, reference.control_events);

        // Billing conservation, job by job: the telescoped slice deltas end
        // exactly at the job's own engine-time total.
        assert_eq!(
            outcome.billed_engine_time,
            job_report.engine_time(),
            "job {k}: billed time does not telescope to the report total"
        );
        total_billed += outcome.billed_engine_time;
        total_restores += outcome.restores;
        assert_eq!(outcome.restores, outcome.evictions, "job {k}: every eviction thaws once");
        min_slices = min_slices.min(outcome.slices);
        max_slices = max_slices.max(outcome.slices);
    }

    // ...and in aggregate.
    assert_eq!(report.total_billed, total_billed, "service total is the sum of job bills");
    assert_eq!(report.evictions, total_restores, "eviction/thaw ledger balances");

    // Fairness: every job is preempted at least once (nobody runs to
    // completion in one slice while others wait), and round-robin keeps the
    // slice counts of equal-length jobs within one of each other.
    assert!(min_slices >= 2, "every job must be preempted at least once (min {min_slices})");
    assert!(
        max_slices - min_slices <= 1,
        "round-robin fairness bound violated: slices range {min_slices}..={max_slices}"
    );
}
