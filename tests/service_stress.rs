//! Scheduler stress battery: one thousand sessions through the
//! [`harvsim::SessionService`] under a deliberately tiny resident-memory
//! budget, so almost every preemption becomes a checkpoint-evict/thaw cycle.
//! Pinned properties:
//!
//! * every job finishes, and its result is **bit-identical** to running the
//!   same scenario sequentially on one thread (final state, step counts,
//!   digital events, control actions);
//! * billing conserves: each job's billed engine time equals its own
//!   report's engine-time total, and the per-job bills sum to the service
//!   total — slice deltas telescope exactly because the counters ride
//!   inside the checkpoints;
//! * fairness: round-robin slicing gives every equal-length job the same
//!   number of slices (±1), so no session starves behind the queue;
//! * eviction accounting balances: every frozen job thaws exactly once per
//!   eviction.

use std::sync::{Arc, Once};
use std::time::Duration;

use harvsim::core::mixed::ControlEvent;
use harvsim::linalg::DVector;
use harvsim::{
    FaultPlan, FaultSite, ScenarioConfig, ServiceError, ServiceOptions, Session, SessionService,
    Simulation, SimulationEngine,
};

/// Keep deliberately injected panics out of the test output while leaving the
/// default hook in charge of every *real* panic (assertion failures included).
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains("injected fault") {
                default_hook(info);
            }
        }));
    });
}

const JOBS: usize = 1000;
const DURATION_S: f64 = 0.015;
const SLICE_S: f64 = 0.006; // => 3 slices per job (2 preemptions + finish)

/// Job `k`'s scenario: a short closed-loop run with a retune and watchdog
/// wakes inside the window, perturbed per job so no two jobs share a
/// trajectory (a swapped checkpoint would be caught).
fn job_scenario(k: usize) -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = DURATION_S;
    scenario.frequency_step_time_s = 0.005;
    scenario.controller.watchdog_period_s = 0.006;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.002;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.002;
    scenario.initial_supercap_voltage = 2.5 + k as f64 * 1e-4;
    // A sprinkle of Newton–Raphson jobs keeps both engines in the same pool.
    if k % 100 == 7 {
        scenario.engine = SimulationEngine::NewtonRaphson(Default::default());
    }
    scenario.label = Some(format!("job-{k}"));
    scenario
}

/// Plain-data extract of a sequential single-thread run, for cross-thread
/// comparison against the scheduled outcome.
struct Reference {
    final_state: DVector,
    state_space_steps: usize,
    baseline_steps: usize,
    digital_events: u64,
    control_events: Vec<ControlEvent>,
}

fn reference_for(k: usize) -> Reference {
    let mut session = Simulation::from_config(job_scenario(k)).start().expect("job starts");
    session.run_to_end().expect("job completes");
    let report = session.report();
    Reference {
        final_state: report.final_state,
        state_space_steps: report.engine_stats.state_space.steps,
        baseline_steps: report.engine_stats.baseline.steps,
        digital_events: report.digital_events,
        control_events: report.control_events,
    }
}

/// Sequential references for all jobs, computed on a plain thread-chunked
/// map (no service involved) to keep the test's wall clock sane.
fn sequential_references() -> Vec<Reference> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let chunk = JOBS.div_ceil(threads);
    let mut slots: Vec<Option<Reference>> = (0..JOBS).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = Some(reference_for(t * chunk + i));
                }
            });
        }
    });
    slots.into_iter().map(|slot| slot.expect("every reference computed")).collect()
}

#[test]
fn thousand_sessions_scheduled_under_memory_pressure_match_sequential() {
    let references = sequential_references();

    let service = SessionService::new(ServiceOptions {
        workers: None, // thread per core
        slice_s: SLICE_S,
        // ~6 resident frames' worth: with a full pool this forces the
        // checkpoint-evict/thaw path on nearly every preemption.
        resident_budget_bytes: Some(64 * 1024),
        ..Default::default()
    })
    .expect("valid options");
    let jobs: Vec<Simulation> =
        (0..JOBS).map(|k| Simulation::from_config(job_scenario(k))).collect();
    let report = service.run(jobs);

    assert_eq!(report.outcomes.len(), JOBS);
    assert!(report.workers >= 1);
    assert!(report.evictions > 0, "the {}-byte budget must force checkpoint evictions", 64 * 1024);
    assert!(report.peak_resident_bytes > 0);

    let mut total_billed = std::time::Duration::ZERO;
    let mut total_restores = 0usize;
    let mut min_slices = usize::MAX;
    let mut max_slices = 0usize;
    for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
        assert_eq!(outcome.label.as_deref(), Some(format!("job-{k}").as_str()));
        let job_report = outcome
            .result
            .as_ref()
            .unwrap_or_else(|err| panic!("job {k} failed under the scheduler: {err}"));

        // Bit-identical to the sequential run of the same scenario.
        assert_eq!(
            job_report.final_state, reference.final_state,
            "job {k}: scheduled final state diverged from sequential"
        );
        assert_eq!(job_report.engine_stats.state_space.steps, reference.state_space_steps);
        assert_eq!(job_report.engine_stats.baseline.steps, reference.baseline_steps);
        assert_eq!(job_report.digital_events, reference.digital_events);
        assert_eq!(job_report.control_events, reference.control_events);

        // Billing conservation, job by job: the telescoped slice deltas end
        // exactly at the job's own engine-time total.
        assert_eq!(
            outcome.billed_engine_time,
            job_report.engine_time(),
            "job {k}: billed time does not telescope to the report total"
        );
        total_billed += outcome.billed_engine_time;
        total_restores += outcome.restores;
        assert_eq!(outcome.restores, outcome.evictions, "job {k}: every eviction thaws once");
        min_slices = min_slices.min(outcome.slices);
        max_slices = max_slices.max(outcome.slices);
    }

    // ...and in aggregate.
    assert_eq!(report.total_billed, total_billed, "service total is the sum of job bills");
    assert_eq!(report.evictions, total_restores, "eviction/thaw ledger balances");

    // Fairness: every job is preempted at least once (nobody runs to
    // completion in one slice while others wait), and round-robin keeps the
    // slice counts of equal-length jobs within one of each other.
    assert!(min_slices >= 2, "every job must be preempted at least once (min {min_slices})");
    assert!(
        max_slices - min_slices <= 1,
        "round-robin fairness bound violated: slices range {min_slices}..={max_slices}"
    );
}

/// Quarantine semantics: a session that panics mid-batch is isolated with a
/// typed [`ServiceError::SessionPanicked`], its last sealed checkpoint stays
/// loadable and resumes bit-identically, and every neighbour finishes with
/// correct billing — one bad job never takes the pool down.
#[test]
fn quarantined_session_keeps_its_checkpoint_and_neighbours_finish() {
    silence_injected_panics();
    const QJOBS: usize = 8;
    let references: Vec<Reference> = (0..QJOBS).map(reference_for).collect();

    // Panic at the 10th slice boundary (budget 1, so exactly one victim).
    // With 8 jobs and round-robin slicing, boundary ordinals 0..=7 are first
    // slices, so ordinal 9 hits some job's *second* slice — guaranteeing the
    // victim has already sealed a checkpoint when the panic lands.
    let plan = Arc::new(FaultPlan::new(0xC0FFEE).with_site(FaultSite::SliceBoundary, 10, 1));
    let service = SessionService::new(ServiceOptions {
        workers: Some(2),
        slice_s: SLICE_S,
        resident_budget_bytes: Some(0), // evict everything: checkpoint every slice
        fault_plan: Some(Arc::clone(&plan)),
        ..Default::default()
    })
    .expect("valid options");
    let jobs: Vec<Simulation> =
        (0..QJOBS).map(|k| Simulation::from_config(job_scenario(k))).collect();
    let report = service.run(jobs);

    assert_eq!(plan.injected(FaultSite::SliceBoundary), 1, "the fault fired");
    assert_eq!(report.quarantined, 1, "exactly one session is quarantined");
    assert!(!report.interrupted, "a quarantine is not a service interruption");

    let mut ok_jobs = 0usize;
    let mut total_billed = Duration::ZERO;
    for (k, (outcome, reference)) in report.outcomes.iter().zip(&references).enumerate() {
        total_billed += outcome.billed_engine_time;
        match &outcome.result {
            Err(ServiceError::SessionPanicked { id, payload }) => {
                assert_eq!(id, &format!("job-{k}"), "quarantine is attributed to the victim");
                assert!(payload.contains("injected fault"), "payload preserved: {payload}");
                // The last good checkpoint survives quarantine: it restores
                // and resumes to a final state bit-identical to an
                // uninterrupted run of the same scenario.
                let frame = outcome
                    .last_checkpoint
                    .as_ref()
                    .expect("a quarantined session retains its last sealed frame");
                let mut resumed = Session::restore(frame).expect("quarantined frame restores");
                resumed.run_to_end().expect("resumed session completes");
                let resumed = resumed.report();
                assert_eq!(
                    resumed.final_state, reference.final_state,
                    "job {k}: resume-from-quarantine diverged from sequential"
                );
                assert_eq!(resumed.engine_stats.state_space.steps, reference.state_space_steps);
                assert_eq!(resumed.control_events, reference.control_events);
            }
            Ok(job_report) => {
                ok_jobs += 1;
                assert_eq!(
                    job_report.final_state, reference.final_state,
                    "job {k}: neighbour of a quarantined session diverged"
                );
                assert_eq!(
                    outcome.billed_engine_time,
                    job_report.engine_time(),
                    "job {k}: billing still telescopes next to a quarantine"
                );
            }
            Err(other) => panic!("job {k}: unexpected error {other}"),
        }
    }
    assert_eq!(ok_jobs, QJOBS - 1, "every non-victim job completes");
    assert_eq!(report.total_billed, total_billed, "partial slices of the victim are still billed");
}

/// A probe that panics after a fixed number of samples — stands in for any
/// user observer with a latent bug.
struct PanickingProbe {
    samples: usize,
    panic_at: usize,
}

impl harvsim::Probe for PanickingProbe {
    fn on_sample(&mut self, _t: f64, _states: &DVector, _terminals: &DVector) {
        self.samples += 1;
        if self.samples >= self.panic_at {
            panic!("injected fault: probe panic at sample {}", self.samples);
        }
    }
}

/// A panicking user probe is containable: the panic unwinds out of the
/// session without corrupting anything durable — a checkpoint sealed before
/// the probe was attached restores and resumes bit-identically.
#[test]
fn probe_panic_leaves_sealed_checkpoints_untouched() {
    silence_injected_panics();
    let scenario = job_scenario(3);

    // Uninterrupted reference.
    let mut reference = Simulation::from_config(scenario.clone()).start().expect("starts");
    reference.run_to_end().expect("completes");
    let reference = reference.report();

    // Seal a mid-run checkpoint, then let a faulty probe panic on resume.
    let mut session = Simulation::from_config(scenario).start().expect("starts");
    session.run_until(DURATION_S / 2.0).expect("first half runs");
    let frame = session.checkpoint().expect("mid-run frame seals");

    let mut victim = Session::restore(&frame).expect("frame restores");
    victim.add_probe(PanickingProbe { samples: 0, panic_at: 1 });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| victim.run_to_end()));
    let payload = outcome.expect_err("the probe panic must surface to the supervisor");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the probe's format string");
    assert!(message.contains("injected fault"), "payload preserved: {message}");

    // The sealed frame is unaffected: a clean restore finishes the run
    // bit-identically to the uninterrupted reference.
    let mut resumed = Session::restore(&frame).expect("frame still restores after the panic");
    resumed.run_to_end().expect("resumed run completes");
    let resumed = resumed.report();
    assert_eq!(resumed.final_state, reference.final_state);
    assert_eq!(resumed.engine_stats.state_space.steps, reference.engine_stats.state_space.steps);
    assert_eq!(resumed.digital_events, reference.digital_events);
    assert_eq!(resumed.control_events, reference.control_events);
}
