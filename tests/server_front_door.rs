//! The hardened front door, end to end: full command lifecycle over a real
//! socket transport, idempotent retry after a dropped reply, deterministic
//! admission-control shedding, graceful drain with bit-identical resumption
//! after a restart, and the kill-during-drain torture.
//!
//! Bit-identity is witnessed at the wire level: the `status` line of a
//! finished session carries the FNV-1a-64 digest of its final state vector,
//! which must equal the digest of an uninterrupted sequential run of the
//! same spec.

#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harvsim::core::store::SessionStore;
use harvsim::{
    fnv1a64, Client, Command, FaultKind, FaultPlan, FaultSite, JobClass, Response, RetryPolicy,
    Server, ServerOptions, SubmitSpec, WireError, WireState,
};

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "harvsim-door-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &PathBuf, options: ServerOptions) -> Server {
    let store = SessionStore::open(dir).expect("open store");
    Server::start(store, options).expect("start server")
}

/// A distinct, quickly-finishing spec per index: unique id, unique initial
/// voltage (so final states differ across jobs), ~7 slices at the test's
/// 0.002 s slice.
fn quick_spec(k: usize, class: JobClass) -> SubmitSpec {
    let mut spec = SubmitSpec::new(format!("door-{}-{k}", class));
    spec.class = class;
    spec.deadline_s = Some(0.5 + k as f64);
    spec.duration_s = Some(0.015);
    spec.step_at_s = Some(0.004);
    spec.initial_voltage = Some(2.5 + k as f64 * 1e-3);
    spec
}

/// A long spec (hundreds of slices at 0.002 s) that cannot finish before the
/// test gets a pause/cancel/drain in.
fn long_spec(id: &str, class: JobClass) -> SubmitSpec {
    let mut spec = SubmitSpec::new(id);
    spec.class = class;
    spec.duration_s = Some(0.8);
    spec.step_at_s = Some(0.3);
    spec.initial_voltage = Some(2.6);
    spec
}

/// The uninterrupted sequential run's final-state digest — the bit-identity
/// reference every scheduled/recovered run must reproduce.
fn reference_fnv(spec: &SubmitSpec) -> u64 {
    let mut session = spec.simulation().start().expect("start reference");
    session.run_to_end().expect("run reference");
    let report = session.report();
    let mut bytes = Vec::with_capacity(report.final_state.len() * 8);
    for value in report.final_state.iter() {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Polls `status <id>` via `execute` until the session reaches one of
/// `want`, with a generous wall-clock deadline.
fn await_state(server: &Server, id: &str, want: &[WireState]) -> harvsim::StatusInfo {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match server.execute(Command::Status { id: id.into() }) {
            Response::Status(info) => {
                if want.contains(&info.state) {
                    return info;
                }
                assert!(
                    Instant::now() < deadline,
                    "timed out waiting for {id} to reach {want:?}; last state {:?}",
                    info.state
                );
            }
            other => panic!("status of {id} answered {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A retrying [`Client`] whose "connections" are socket pairs served by a
/// dedicated handler thread each — a faithful stand-in for a unix-socket
/// transport that the test fully controls.
fn pair_client(
    server: &Server,
) -> Client<UnixStream, impl FnMut(&RetryPolicy) -> std::io::Result<(UnixStream, UnixStream)>> {
    let server = server.clone();
    let connect = move |policy: &RetryPolicy| -> std::io::Result<(UnixStream, UnixStream)> {
        let (client_end, server_end) = UnixStream::pair()?;
        client_end.set_read_timeout(Some(policy.deadline))?;
        let handler = server.clone();
        let read_half = server_end.try_clone()?;
        std::thread::spawn(move || {
            let _ = handler.handle_connection(read_half, server_end);
        });
        Ok((client_end.try_clone()?, client_end))
    };
    Client::new(
        connect,
        RetryPolicy {
            attempts: 3,
            deadline: Duration::from_secs(20),
            backoff: Duration::from_millis(5),
        },
    )
}

#[test]
fn full_lifecycle_over_a_socket_transport_is_bit_identical() {
    let dir = unique_dir("lifecycle");
    let server = start_server(
        &dir,
        ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
    );
    let mut client = pair_client(&server);

    assert_eq!(client.send(&Command::Ping).expect("ping"), Response::Pong);

    let specs: Vec<SubmitSpec> =
        JobClass::ALL.iter().enumerate().map(|(k, class)| quick_spec(k, *class)).collect();
    for spec in &specs {
        match client.send(&Command::Submit(spec.clone())).expect("submit") {
            Response::Submitted { id, class, .. } => {
                assert_eq!(id, spec.id);
                assert_eq!(class, spec.class);
            }
            other => panic!("submit answered {other:?}"),
        }
    }

    for spec in &specs {
        let info = await_state(&server, &spec.id, &[WireState::Done]);
        assert_eq!(info.class, spec.class);
        assert!(info.billed_ns > 0, "a finished session must have been billed");
        assert_eq!(
            info.final_state_fnv,
            Some(reference_fnv(spec)),
            "{}: scheduled final state diverged from the sequential run",
            spec.id
        );
        // `bill` and `status` must agree on the ledger.
        match client.send(&Command::Bill { id: spec.id.clone() }).expect("bill") {
            Response::Billed { id, billed_ns } => {
                assert_eq!(id, spec.id);
                assert_eq!(billed_ns, info.billed_ns);
            }
            other => panic!("bill answered {other:?}"),
        }
    }

    match client.send(&Command::Stats).expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.offered, 3);
            assert_eq!(stats.admitted, 3);
            assert_eq!(stats.shed, 0);
            assert_eq!(stats.done, 3);
            assert_eq!(stats.failed, 0);
            assert_eq!(stats.depths, [0, 0, 0], "finished sessions are no longer resident");
            assert!(
                stats.queue_latency_ns.iter().any(|&ns| ns > 0),
                "queue latency must have been booked"
            );
        }
        other => panic!("stats answered {other:?}"),
    }

    // Unknown and invalid requests answer typed, never close the connection.
    match client.send(&Command::Status { id: "nobody".into() }).expect("status") {
        Response::Error(WireError::UnknownSession { id }) => assert_eq!(id, "nobody"),
        other => panic!("unknown session answered {other:?}"),
    }

    match client.send(&Command::Drain).expect("drain") {
        Response::Drained { checkpointed, not_started, .. } => {
            assert_eq!(checkpointed, 0, "every session already finished");
            assert_eq!(not_started, 0);
        }
        other => panic!("drain answered {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pause_resume_cancel_are_idempotent_state_transitions() {
    let dir = unique_dir("prc");
    let server = start_server(
        &dir,
        ServerOptions { workers: Some(1), slice_s: 0.002, ..ServerOptions::default() },
    );

    let held = long_spec("prc-held", JobClass::Batch);
    let doomed = long_spec("prc-doomed", JobClass::Batch);
    for spec in [&held, &doomed] {
        assert!(matches!(
            server.execute(Command::Submit(spec.clone())),
            Response::Submitted { .. }
        ));
    }

    // Pause both (from Queued or Running — both paths must land in Paused).
    for id in ["prc-held", "prc-doomed"] {
        assert!(matches!(
            server.execute(Command::Pause { id: id.into() }),
            Response::Paused { .. }
        ));
        let info = await_state(&server, id, &[WireState::Paused]);
        assert_eq!(info.state, WireState::Paused);
        // Pausing a paused session is a no-op, not an error.
        assert!(matches!(
            server.execute(Command::Pause { id: id.into() }),
            Response::Paused { .. }
        ));
    }

    // Cancel the doomed one from Paused; cancelling again stays cancelled.
    assert!(matches!(
        server.execute(Command::Cancel { id: "prc-doomed".into() }),
        Response::Cancelled { .. }
    ));
    await_state(&server, "prc-doomed", &[WireState::Cancelled]);
    assert!(matches!(
        server.execute(Command::Cancel { id: "prc-doomed".into() }),
        Response::Cancelled { .. }
    ));
    // Resubmitting a cancelled id reports its state; it is NOT re-admitted.
    match server.execute(Command::Submit(doomed.clone())) {
        Response::Resubmitted { state, .. } => assert_eq!(state, WireState::Cancelled),
        other => panic!("resubmit of cancelled answered {other:?}"),
    }
    // Resuming a cancelled session is a typed state error.
    match server.execute(Command::Resume { id: "prc-doomed".into() }) {
        Response::Error(WireError::InvalidState { state, .. }) => {
            assert_eq!(state, WireState::Cancelled)
        }
        other => panic!("resume of cancelled answered {other:?}"),
    }

    // Resume the held one and let it finish — bit-identically.
    assert!(matches!(
        server.execute(Command::Resume { id: "prc-held".into() }),
        Response::Resumed { .. }
    ));
    let info = await_state(&server, "prc-held", &[WireState::Done]);
    assert_eq!(info.final_state_fnv, Some(reference_fnv(&held)));

    match server.execute(Command::Stats) {
        Response::Stats(stats) => {
            assert_eq!((stats.admitted, stats.done, stats.cancelled), (2, 1, 1));
        }
        other => panic!("stats answered {other:?}"),
    }
    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_sheds_typed_and_recovers_capacity() {
    let dir = unique_dir("overload");
    let server = start_server(
        &dir,
        ServerOptions {
            workers: Some(1),
            slice_s: 0.002,
            class_capacity: 2,
            ..ServerOptions::default()
        },
    );

    // Two best-effort residents fill the class; the third is shed typed.
    // Resident-count admission makes this deterministic: paused/queued/
    // running sessions all hold their seat until resolved.
    for k in 0..2 {
        let spec = long_spec(&format!("load-{k}"), JobClass::BestEffort);
        assert!(matches!(server.execute(Command::Submit(spec)), Response::Submitted { .. }));
    }
    match server.execute(Command::Submit(long_spec("load-2", JobClass::BestEffort))) {
        Response::Error(WireError::Overloaded { class, depth, capacity }) => {
            assert_eq!(class, JobClass::BestEffort);
            assert_eq!((depth, capacity), (2, 2));
        }
        other => panic!("overloaded submit answered {other:?}"),
    }
    // Other classes are unaffected by best-effort pressure.
    assert!(matches!(
        server.execute(Command::Submit(quick_spec(9, JobClass::Interactive))),
        Response::Submitted { .. }
    ));
    // A shed session was never admitted: it has no state to query or bill.
    assert!(matches!(
        server.execute(Command::Status { id: "load-2".into() }),
        Response::Error(WireError::UnknownSession { .. })
    ));

    // Cancelling a resident frees its seat; the retried submit now lands.
    assert!(matches!(
        server.execute(Command::Cancel { id: "load-0".into() }),
        Response::Cancelled { .. }
    ));
    await_state(&server, "load-0", &[WireState::Cancelled]);
    assert!(matches!(
        server.execute(Command::Submit(long_spec("load-2", JobClass::BestEffort))),
        Response::Submitted { .. }
    ));

    match server.execute(Command::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.offered, 5);
            assert_eq!(stats.admitted, 4);
            assert_eq!(stats.shed, 1);
            assert_eq!(
                stats.admitted + stats.shed + stats.resubmitted,
                stats.offered,
                "every offer is accounted admitted, shed or resubmitted"
            );
        }
        other => panic!("stats answered {other:?}"),
    }
    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_reply_retry_is_idempotent_and_single_billed() {
    let dir = unique_dir("retry");
    // The very first wire write — the reply to the first submit — is eaten
    // by an injected I/O fault; the session is already admitted by then.
    let plan = Arc::new(FaultPlan::new(0xD00D).with_site_kinds(
        FaultSite::WireWrite,
        1,
        1,
        &[FaultKind::Io],
    ));
    let server = start_server(
        &dir,
        ServerOptions {
            workers: Some(2),
            slice_s: 0.002,
            fault_plan: Some(plan.clone()),
            ..ServerOptions::default()
        },
    );
    let mut client = pair_client(&server);

    let spec = quick_spec(0, JobClass::Interactive);
    // The client never sees the dropped reply: it reconnects, resends, and
    // the idempotent resubmission reports the already-admitted session.
    match client.send(&Command::Submit(spec.clone())).expect("submit with retry") {
        Response::Resubmitted { id, .. } => assert_eq!(id, spec.id),
        other => panic!("retried submit answered {other:?}"),
    }
    plan.drained().expect("the armed wire-write fault must have fired");

    let info = await_state(&server, &spec.id, &[WireState::Done]);
    assert_eq!(info.final_state_fnv, Some(reference_fnv(&spec)));

    match client.send(&Command::Stats).expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.offered, 2, "both the submit and its retry are offers");
            assert_eq!(stats.admitted, 1, "the session was admitted exactly once");
            assert_eq!(stats.resubmitted, 1, "the retry is booked as an idempotent resubmit");
            assert_eq!(stats.shed, 0);
            assert_eq!(stats.done, 1);
        }
        other => panic!("stats answered {other:?}"),
    }
    // Billed exactly once: `bill` equals the finished status' ledger and is
    // stable across reads.
    let billed = match client.send(&Command::Bill { id: spec.id.clone() }).expect("bill") {
        Response::Billed { billed_ns, .. } => billed_ns,
        other => panic!("bill answered {other:?}"),
    };
    assert_eq!(billed, info.billed_ns);

    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_hammering_the_door_stay_accounted() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;
    let dir = unique_dir("hammer");
    let server = start_server(
        &dir,
        ServerOptions { workers: Some(4), slice_s: 0.002, ..ServerOptions::default() },
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut client = pair_client(&server);
                for j in 0..PER_CLIENT {
                    let mut spec = quick_spec(c * PER_CLIENT + j, JobClass::ALL[j % 3]);
                    spec.id = format!("hammer-{c}-{j}");
                    match client.send(&Command::Submit(spec)).expect("submit") {
                        Response::Submitted { .. } | Response::Resubmitted { .. } => {}
                        Response::Error(WireError::Overloaded { .. }) => continue,
                        other => panic!("client {c} submit answered {other:?}"),
                    }
                    // Interleave the other verbs while jobs are in flight.
                    let id = format!("hammer-{c}-{j}");
                    client.send(&Command::Status { id: id.clone() }).expect("status");
                    if j == PER_CLIENT - 1 {
                        client.send(&Command::Cancel { id }).expect("cancel");
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Wait for the flight to land: every admitted session resolves.
    let deadline = Instant::now() + Duration::from_secs(120);
    let stats = loop {
        let stats = server.stats();
        if stats.done + stats.failed + stats.cancelled == stats.admitted {
            break stats;
        }
        assert!(Instant::now() < deadline, "sessions stuck in flight: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(stats.offered, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.admitted + stats.shed + stats.resubmitted, stats.offered);
    assert_eq!(stats.failed, 0, "no session may fail under concurrency alone");
    assert_eq!(stats.depths, [0, 0, 0], "no session may leak resident");

    // Every admitted id answers `status` with a resolved state.
    for c in 0..CLIENTS {
        for j in 0..PER_CLIENT {
            match server.execute(Command::Status { id: format!("hammer-{c}-{j}") }) {
                Response::Status(info) => assert!(
                    matches!(
                        info.state,
                        WireState::Done | WireState::Cancelled | WireState::Failed
                    ),
                    "hammer-{c}-{j} left unresolved: {:?}",
                    info.state
                ),
                Response::Error(WireError::UnknownSession { .. }) => {} // shed
                other => panic!("status answered {other:?}"),
            }
        }
    }
    server.execute(Command::Drain);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_then_restart_resumes_bit_identically_with_billing_conserved() {
    let dir = unique_dir("drain");
    let specs: Vec<SubmitSpec> = (0..3)
        .map(|k| {
            let mut spec = long_spec(&format!("drain-{k}"), JobClass::Batch);
            spec.initial_voltage = Some(2.55 + k as f64 * 1e-3);
            spec
        })
        .collect();
    let references: Vec<u64> = specs.iter().map(reference_fnv).collect();

    // Phase 1: run until every session has made progress, then drain.
    let mut billed_at_drain = Vec::new();
    {
        let server = start_server(
            &dir,
            ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
        );
        for spec in &specs {
            assert!(matches!(
                server.execute(Command::Submit(spec.clone())),
                Response::Submitted { .. }
            ));
        }
        // At least one slice each, so there is real state to checkpoint.
        for spec in &specs {
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                if let Response::Status(info) =
                    server.execute(Command::Status { id: spec.id.clone() })
                {
                    if info.time_s > 0.0 {
                        break;
                    }
                }
                assert!(Instant::now() < deadline, "{} never progressed", spec.id);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        match server.execute(Command::Drain) {
            Response::Drained { checkpointed, not_started, .. } => {
                assert_eq!(checkpointed, 3, "every resident session must be persisted");
                assert_eq!(not_started, 0);
            }
            other => panic!("drain answered {other:?}"),
        }
        // Drain is idempotent: the second call reports the same accounting.
        assert!(matches!(
            server.execute(Command::Drain),
            Response::Drained { checkpointed: 3, not_started: 0, .. }
        ));
        // Admissions are refused once draining.
        assert!(matches!(
            server.execute(Command::Submit(quick_spec(7, JobClass::Batch))),
            Response::Error(WireError::Draining)
        ));
        for spec in &specs {
            match server.execute(Command::Status { id: spec.id.clone() }) {
                Response::Status(info) => {
                    assert_eq!(info.state, WireState::Paused);
                    assert!(info.billed_ns > 0);
                    billed_at_drain.push(info.billed_ns);
                }
                other => panic!("status answered {other:?}"),
            }
        }
        server.join();
    }

    // The sealed store carries exactly the drained sessions, no temp litter.
    {
        let store = SessionStore::open(&dir).expect("reopen store");
        let mut ids = store.active_ids();
        ids.sort();
        assert_eq!(ids, vec!["drain-0", "drain-1", "drain-2"]);
    }
    assert_no_temp_litter(&dir);

    // Phase 2: a fresh server over the same store re-adopts and finishes
    // every session bit-identically; the restart never re-bills the work
    // already on the ledger.
    {
        let server = start_server(
            &dir,
            ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
        );
        for spec in &specs {
            match server.execute(Command::Submit(spec.clone())) {
                Response::Resubmitted { id, state } => {
                    assert_eq!(id, spec.id);
                    assert_eq!(state, WireState::Queued, "recovered sessions re-enter the queue");
                }
                other => panic!("resubmit answered {other:?}"),
            }
        }
        for ((spec, reference), before) in specs.iter().zip(&references).zip(&billed_at_drain) {
            let info = await_state(&server, &spec.id, &[WireState::Done]);
            assert!(info.recovered, "{} must be marked recovered", spec.id);
            assert_eq!(
                info.final_state_fnv,
                Some(*reference),
                "{}: resumed run diverged from the sequential reference",
                spec.id
            );
            assert!(
                info.billed_ns >= *before,
                "{}: the frame-carried ledger went backwards ({} < {before})",
                spec.id,
                info.billed_ns
            );
        }
        server.execute(Command::Drain);
        server.join();
    }
    // Finished sessions left the store; the manifest is clean.
    let store = SessionStore::open(&dir).expect("final reopen");
    assert!(store.active_ids().is_empty(), "finished sessions must leave the store");
    assert_no_temp_litter(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_during_drain_is_recoverable_bit_identically() {
    let dir = unique_dir("killdrain");
    let specs: Vec<SubmitSpec> =
        (0..3).map(|k| long_spec(&format!("torture-{k}"), JobClass::Batch)).collect();
    let references: Vec<u64> = specs.iter().map(reference_fnv).collect();

    // Phase 1: make progress, drain cleanly — three durable frames.
    {
        let server = start_server(
            &dir,
            ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
        );
        for spec in &specs {
            server.execute(Command::Submit(spec.clone()));
        }
        for spec in &specs {
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                if let Response::Status(info) =
                    server.execute(Command::Status { id: spec.id.clone() })
                {
                    if info.time_s > 0.0 {
                        break;
                    }
                }
                assert!(Instant::now() < deadline, "{} never progressed", spec.id);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert!(matches!(server.execute(Command::Drain), Response::Drained { .. }));
        server.join();
    }

    // Phase 2: a drain that is killed between two persists. The recovered
    // sessions never run (nobody resumed them), so the slice-boundary
    // ordinal is consumed only by the drain loop: entry 0 survives, the
    // kill fires before entry 1.
    let plan = Arc::new(FaultPlan::new(0xBAD).with_kills(1, 1));
    {
        let server = start_server(
            &dir,
            ServerOptions {
                workers: Some(1),
                slice_s: 0.002,
                fault_plan: Some(plan.clone()),
                ..ServerOptions::default()
            },
        );
        match server.execute(Command::Drain) {
            Response::Error(WireError::Failed(detail)) => {
                assert!(detail.contains("killed during drain"), "unexpected detail {detail:?}");
            }
            other => panic!("killed drain answered {other:?}"),
        }
        assert_eq!(plan.kills(), 1, "the kill schedule must have fired exactly once");
        server.join();
    }

    // Phase 3: the kill lost nothing durable — a clean server over the same
    // store resumes all three bit-identically.
    {
        let store = SessionStore::open(&dir).expect("reopen after kill");
        let mut ids = store.active_ids();
        ids.sort();
        assert_eq!(
            ids,
            vec!["torture-0", "torture-1", "torture-2"],
            "the killed drain must not have lost or corrupted any session"
        );
    }
    {
        let server = start_server(
            &dir,
            ServerOptions { workers: Some(2), slice_s: 0.002, ..ServerOptions::default() },
        );
        for spec in &specs {
            assert!(matches!(
                server.execute(Command::Submit(spec.clone())),
                Response::Resubmitted { state: WireState::Queued, .. }
            ));
        }
        for (spec, reference) in specs.iter().zip(&references) {
            let info = await_state(&server, &spec.id, &[WireState::Done]);
            assert_eq!(
                info.final_state_fnv,
                Some(*reference),
                "{}: post-kill resume diverged from the sequential reference",
                spec.id
            );
            assert!(info.billed_ns > 0);
        }
        server.execute(Command::Drain);
        server.join();
    }
    assert_no_temp_litter(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// No `*.tmp` staging files and no orphaned (non-manifest) frames may ever
/// survive in the store directory.
fn assert_no_temp_litter(dir: &PathBuf) {
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "temp staging file {name:?} leaked into the store");
    }
}
