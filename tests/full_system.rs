//! Cross-crate integration tests: the complete harvester model driven through
//! the public `harvsim` API.
//!
//! Spans are kept short (fractions of a second) because these tests run in
//! debug builds; the release-mode benches and the `repro` binary exercise the
//! longer paper-scale spans.

use harvsim::core::measurement;
use harvsim::{
    BaselineOptions, HarvesterParameters, ScenarioConfig, SimulationEngine, SolverOptions,
    SpeedComparison, TunableHarvester,
};

fn short_scenario1() -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.3;
    scenario.frequency_step_time_s = 0.1;
    scenario
}

#[test]
fn complete_model_has_the_papers_dimensions() {
    use harvsim::core::assembly::AnalogueSystem;
    let harvester =
        TunableHarvester::with_constant_excitation(HarvesterParameters::practical_device(), 70.0)
            .expect("harvester builds");
    assert_eq!(
        harvester.state_count(),
        12,
        "the paper's 11x11 state matrix plus the rail-capacitance state (DESIGN.md §3.2)"
    );
    assert_eq!(harvester.net_count(), 4, "Vm, Im, Vc, Ic terminal variables");
}

#[test]
fn scenario1_generates_power_and_holds_the_store_voltage() {
    let outcome = short_scenario1().run().expect("scenario runs");
    let report = measurement::power_report(&outcome).expect("power report");
    // The operating point targets roughly 100 uW of generated power; accept a
    // generous band since the span is very short.
    assert!(
        report.rms_before_uw > 5.0 && report.rms_before_uw < 1000.0,
        "RMS power before the step = {} uW",
        report.rms_before_uw
    );
    let store = measurement::supercap_voltage_waveform(&outcome);
    assert!(store.iter().all(|(_, v)| *v > 2.0 && *v < 3.5), "store voltage stays physical");
}

#[test]
fn proposed_and_baseline_engines_agree_on_the_waveforms() {
    let scenario = short_scenario1();
    let comparison = SpeedComparison::with_defaults();
    let report = comparison.run(&scenario).expect("comparison runs");
    assert!(
        report.accuracy.max_deviation < 0.05,
        "supercap-voltage deviation between engines = {} V",
        report.accuracy.max_deviation
    );
    assert!(report.speedup() > 1.0, "state-space engine must be faster, got {}", report.speedup());
}

#[test]
fn engine_choice_is_configurable_through_the_public_api() {
    let scenario =
        short_scenario1().with_engine(SimulationEngine::NewtonRaphson(BaselineOptions::default()));
    let outcome = scenario.run().expect("baseline scenario runs");
    assert!(outcome.result.engine_stats.baseline.steps > 0);
    assert_eq!(outcome.result.engine_stats.state_space.steps, 0);

    let scenario = short_scenario1().with_engine(SimulationEngine::StateSpace(SolverOptions {
        ab_order: 2,
        ..Default::default()
    }));
    let outcome = scenario.run().expect("state-space scenario runs");
    assert!(outcome.result.engine_stats.state_space.steps > 0);
}

#[test]
fn experimental_surrogate_diverges_but_stays_correlated() {
    let scenario = short_scenario1();
    let simulation = scenario.run().expect("simulation runs");
    let surrogate = scenario.run_experimental_surrogate().expect("surrogate runs");
    let comparison = measurement::compare_supercap_voltage(&simulation, &surrogate, 200)
        .expect("waveforms compare");
    // The surrogate has leakage and extra damping, so it must differ a little —
    // but not wildly (the paper's Fig. 8(b)/9 show close correlation).
    assert!(comparison.max_deviation > 0.0);
    assert!(comparison.max_deviation < 0.3, "deviation {} V", comparison.max_deviation);
}
