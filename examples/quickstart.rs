//! Quickstart: drive a streaming simulation session of the tunable harvester
//! and read the generated power and supercapacitor voltage off live probes.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use harvsim::{EnvelopeProbe, PowerProbe, Simulation, StepHistogramProbe, WaveformProbe};

fn main() -> Result<(), harvsim::CoreError> {
    // Scenario 1 of the paper: the ambient vibration shifts from 70 Hz to 71 Hz
    // and the microcontroller retunes the generator to follow it.
    let simulation = Simulation::scenario1().duration(6.0).frequency_step_at(1.0);
    let config = simulation.config().clone();
    println!("simulating {} ({} s span) ...", config.scenario.id(), config.duration_s);

    let mut session = simulation.start()?;

    // Probes observe the run as it happens: streaming power windows, a
    // supercapacitor envelope and a step histogram are all O(1) memory; the
    // decimated waveform capture retains the trace for the ASCII sketch.
    let vm = session.harvester().generator_voltage_net();
    let im = session.harvester().generator_current_net();
    let vc = session.harvester().storage_voltage_net();
    let power =
        session.add_probe(PowerProbe::new(vm, im, config.frequency_step_time_s, config.duration_s));
    let envelope = session.add_probe(EnvelopeProbe::terminal(vc));
    let steps = session.add_probe(StepHistogramProbe::new());
    let trace = session.add_probe(WaveformProbe::new(5e-3));

    // Sessions pause and resume freely: peek at the store mid-run.
    session.run_until(config.duration_s * 0.5)?;
    let halfway = session.probe::<EnvelopeProbe>(envelope).expect("typed probe");
    println!(
        "  at t = {:.2} s the store spans [{:.3}, {:.3}] V — resuming",
        session.time(),
        halfway.min(),
        halfway.max()
    );
    session.run_to_end()?;

    let report = session.report();
    let stats = report.engine_stats.state_space;
    println!(
        "  solver: {} steps, {} linearisations, {} PWL stamp skips, {:.2} s CPU",
        stats.steps,
        stats.linearisations,
        stats.pwl_stamps_skipped,
        stats.cpu_time.as_secs_f64()
    );
    println!("  digital kernel: {} events", report.digital_events);
    println!("  probe memory high-water: {} B", report.peak_probe_bytes);

    let power_report = session.probe::<PowerProbe>(power).expect("typed probe").report();
    println!("  RMS generated power before the step: {:.1} uW", power_report.rms_before_uw);
    println!("  RMS generated power after retuning:  {:.1} uW", power_report.rms_after_uw);

    let histogram = session.probe::<StepHistogramProbe>(steps).expect("typed probe");
    println!(
        "  accepted steps: {} spanning {:.1} .. {:.1} us",
        histogram.total_steps(),
        histogram.min_dt() * 1e6,
        histogram.max_dt() * 1e6
    );

    // Print a coarse ASCII sketch of the supercapacitor voltage trace.
    let capture = session.probe::<WaveformProbe>(trace).expect("typed probe");
    let samples: Vec<(f64, f64)> = capture.terminals().component(vc);
    println!("\n  supercapacitor voltage trace:");
    let stride = (samples.len() / 20).max(1);
    for (t, v) in samples.iter().step_by(stride) {
        let bars = ((v - 2.0).max(0.0) * 60.0) as usize;
        println!("  t={t:6.2}s  {v:5.3} V  |{}", "#".repeat(bars.min(70)));
    }
    Ok(())
}
