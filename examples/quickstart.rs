//! Quickstart: simulate a few seconds of the tunable harvester and print the
//! generated power and supercapacitor voltage.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use harvsim::core::measurement;
use harvsim::ScenarioConfig;

fn main() -> Result<(), harvsim::CoreError> {
    // Scenario 1 of the paper: the ambient vibration shifts from 70 Hz to 71 Hz
    // and the microcontroller retunes the generator to follow it.
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 6.0;
    scenario.frequency_step_time_s = 1.0;

    println!("simulating {} ({} s span) ...", scenario.scenario.id(), scenario.duration_s);
    let outcome = scenario.run()?;

    let stats = outcome.result.engine_stats.state_space;
    println!(
        "  solver: {} steps, {} linearisations, {:.2} s CPU",
        stats.steps,
        stats.linearisations,
        stats.cpu_time.as_secs_f64()
    );
    println!("  digital kernel: {} events", outcome.result.digital_events);
    println!(
        "  resonance after the run: {:.2} Hz (ambient {:.2} Hz)",
        outcome.harvester.resonant_frequency_hz(),
        outcome.harvester.ambient_frequency_hz(scenario.duration_s)
    );

    let report = measurement::power_report(&outcome)?;
    println!("  RMS generated power before the step: {:.1} uW", report.rms_before_uw);
    println!("  RMS generated power after retuning:  {:.1} uW", report.rms_after_uw);

    let supercap = measurement::supercap_voltage_waveform(&outcome);
    let (t_last, v_last) = supercap.last().expect("samples were recorded");
    println!("  supercapacitor voltage at t = {:.1} s: {:.3} V", t_last, v_last);

    // Print a coarse ASCII sketch of the supercapacitor voltage trace.
    println!("\n  supercapacitor voltage trace:");
    let stride = (supercap.len() / 20).max(1);
    for sample in supercap.iter().step_by(stride) {
        let (t, v) = sample;
        let bars = ((v - 2.0).max(0.0) * 60.0) as usize;
        println!("  t={t:6.2}s  {v:5.3} V  |{}", "#".repeat(bars.min(70)));
    }
    Ok(())
}
