//! Scenario 1 of the paper (narrow, 1 Hz tuning): reproduces the data behind
//! Fig. 8(a) (generator output power before/during/after the retune) and
//! Fig. 8(b) (supercapacitor voltage, simulation vs experimental surrogate).
//!
//! ```bash
//! cargo run --release --example tuning_scenario
//! ```

use harvsim::core::measurement;
use harvsim::{PowerProbe, ScenarioConfig, Simulation};

fn main() -> Result<(), harvsim::CoreError> {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 10.0;
    scenario.frequency_step_time_s = 2.0;

    println!("== Scenario 1: 70 Hz -> 71 Hz (narrow tuning) ==");
    // The Fig. 8(a) power figures stream out of a live session probe — no
    // post-hoc waveform walk, and the windows integrate every accepted step
    // rather than the decimated recording.
    let mut session = Simulation::from_config(scenario.clone()).start()?;
    let vm = session.harvester().generator_voltage_net();
    let im = session.harvester().generator_current_net();
    let power = session.add_probe(PowerProbe::new(
        vm,
        im,
        scenario.frequency_step_time_s,
        scenario.duration_s,
    ));
    session.run_to_end()?;
    let report = session.probe::<PowerProbe>(power).expect("typed probe").report();
    println!("Fig. 8(a) — generator output power (streaming probe):");
    println!("  RMS power tuned at 70 Hz (before the shift): {:8.1} uW", report.rms_before_uw);
    println!("  RMS power tuned at 71 Hz (after retuning):   {:8.1} uW", report.rms_after_uw);
    println!("  minimum cycle-averaged power while detuned:  {:8.1} uW", report.dip_uw);
    println!("  (paper: 118 uW at 70 Hz, 117 uW at 71 Hz, measured 116 uW)");

    // The Fig. 8(b) waveform comparison needs dense trajectories on both
    // sides, so it runs through the dense-capture shim.
    println!("\nFig. 8(b) — supercapacitor voltage, simulation vs experiment:");
    let simulation = scenario.run()?;
    let surrogate = scenario.run_experimental_surrogate()?;
    let comparison = measurement::compare_supercap_voltage(&simulation, &surrogate, 400)?;
    println!(
        "  max |simulated - surrogate| = {:.3} V, rms = {:.3} V over {:.1} s",
        comparison.max_deviation, comparison.rms_deviation, comparison.compared_span_s
    );

    let sim_trace = measurement::supercap_voltage_waveform(&simulation);
    let ref_trace = measurement::supercap_voltage_waveform(&surrogate);
    println!("\n  t [s]    simulated [V]   surrogate 'measured' [V]");
    let stride = (sim_trace.len() / 15).max(1);
    for (sample, reference) in sim_trace.iter().zip(ref_trace.iter()).step_by(stride) {
        println!("  {:6.2}   {:10.4}      {:10.4}", sample.0, sample.1, reference.1);
    }

    println!("\ncontrol events:");
    for event in &simulation.result.control_events {
        println!(
            "  t = {:6.2} s  load = {:9}  resonance = {:6.2} Hz",
            event.time_s,
            event.load_mode.name(),
            event.resonant_frequency_hz
        );
    }
    Ok(())
}
