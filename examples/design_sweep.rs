//! Design-space exploration — the use case that motivates the paper's fast
//! simulation: "development of an automated design approach by which the best
//! topology and optimal parameters of energy harvester are obtained iteratively
//! using multiple simulations".
//!
//! This example sweeps the number of voltage-multiplier stages and the
//! supercapacitor energy threshold, running one short closed-loop **streaming
//! session** per design point: the only observers are O(1) probes (power
//! windows, store envelope), so no design point ever materialises a dense
//! trajectory — the sweep's memory footprint is independent of both the grid
//! width and the simulated span, which is what makes "as many scenarios as
//! you can imagine" a memory non-event.
//!
//! ```bash
//! cargo run --release --example design_sweep
//! ```

use harvsim::{EnvelopeProbe, HarvesterParameters, PowerProbe, ScenarioConfig, Simulation};

fn main() -> Result<(), harvsim::CoreError> {
    println!("== design sweep: multiplier stages x energy threshold (streaming sessions) ==");
    println!(
        "{:>7} {:>12} {:>16} {:>16} {:>14} {:>12}",
        "stages",
        "thresh [V]",
        "P_rms(70Hz) [uW]",
        "P_rms(71Hz) [uW]",
        "dV_store [mV]",
        "probe mem [B]"
    );

    let mut peak_bytes_overall = 0usize;
    for stages in [3usize, 4, 5, 6] {
        for threshold in [2.2f64, 2.4] {
            let mut parameters = HarvesterParameters::practical_device();
            parameters.multiplier_stages = stages;
            parameters.energy_threshold_v = threshold;

            let mut scenario = ScenarioConfig::scenario1();
            scenario.parameters = parameters;
            scenario.controller.energy_threshold_v = threshold;
            scenario.duration_s = 5.0;
            scenario.frequency_step_time_s = 1.0;

            let mut session = Simulation::from_config(scenario.clone())
                .label(format!("design+stages={stages}+thresh={threshold}"))
                .start()?;
            let vm = session.harvester().generator_voltage_net();
            let im = session.harvester().generator_current_net();
            let vc = session.harvester().storage_voltage_net();
            let power = session.add_probe(PowerProbe::new(
                vm,
                im,
                scenario.frequency_step_time_s,
                scenario.duration_s,
            ));
            let store = session.add_probe(EnvelopeProbe::terminal(vc));
            session.run_to_end()?;

            let report = session.probe::<PowerProbe>(power).expect("typed probe").report();
            let envelope = session.probe::<EnvelopeProbe>(store).expect("typed probe");
            let dv = (envelope.last() - envelope.first()) * 1e3;
            let peak = session.report().peak_probe_bytes;
            peak_bytes_overall = peak_bytes_overall.max(peak);
            println!(
                "{:>7} {:>12.1} {:>16.1} {:>16.1} {:>14.2} {:>12}",
                stages, threshold, report.rms_before_uw, report.rms_after_uw, dv, peak
            );
        }
    }

    println!("\nEach design point is a full mixed-signal closed-loop simulation observed by");
    println!(
        "streaming probes only — peak probe memory across the whole sweep: {peak_bytes_overall} B."
    );
    Ok(())
}
