//! Design-space exploration — the use case that motivates the paper's fast
//! simulation: "development of an automated design approach by which the best
//! topology and optimal parameters of energy harvester are obtained iteratively
//! using multiple simulations".
//!
//! This example sweeps the number of voltage-multiplier stages and the
//! supercapacitor energy threshold, running one short closed-loop simulation
//! per design point, and reports the energy delivered to the store — something
//! that would be impractical with an hours-per-run commercial simulator.
//!
//! ```bash
//! cargo run --release --example design_sweep
//! ```

use harvsim::core::measurement;
use harvsim::{HarvesterParameters, ScenarioConfig};

fn main() -> Result<(), harvsim::CoreError> {
    println!("== design sweep: multiplier stages x energy threshold ==");
    println!(
        "{:>7} {:>12} {:>16} {:>16} {:>14}",
        "stages", "thresh [V]", "P_rms(70Hz) [uW]", "P_rms(71Hz) [uW]", "dV_store [mV]"
    );

    for stages in [3usize, 4, 5, 6] {
        for threshold in [2.2f64, 2.4] {
            let mut parameters = HarvesterParameters::practical_device();
            parameters.multiplier_stages = stages;
            parameters.energy_threshold_v = threshold;

            let mut scenario = ScenarioConfig::scenario1();
            scenario.parameters = parameters;
            scenario.controller.energy_threshold_v = threshold;
            scenario.duration_s = 5.0;
            scenario.frequency_step_time_s = 1.0;

            let outcome = scenario.run()?;
            let report = measurement::power_report(&outcome)?;
            let trace = measurement::supercap_voltage_waveform(&outcome);
            let dv = (trace.last().expect("samples").1 - trace.first().expect("samples").1) * 1e3;
            println!(
                "{:>7} {:>12.1} {:>16.1} {:>16.1} {:>14.2}",
                stages, threshold, report.rms_before_uw, report.rms_after_uw, dv
            );
        }
    }

    println!("\nEach design point is a full mixed-signal closed-loop simulation;");
    println!("the sweep finishes in seconds thanks to the linearised state-space engine.");
    Ok(())
}
