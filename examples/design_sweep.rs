//! Design-space exploration — the use case that motivates the paper's fast
//! simulation: "development of an automated design approach by which the best
//! topology and optimal parameters of energy harvester are obtained iteratively
//! using multiple simulations".
//!
//! This example drives the `explore` subsystem (DESIGN.md §12) in memory: a
//! declarative [`GridSpec`] over multiplier depth × excitation × pre-charge
//! is executed by the work-stealing, warm-starting [`Explorer`], and the
//! resulting rows are distilled into an exact Pareto front over (harvested
//! energy ↑, store-voltage dip ↓, engine steps ↓). Every point runs as a
//! streaming session observed by O(1) probes, so the grid's memory footprint
//! is independent of both its width and the simulated span — which is what
//! makes "as many scenarios as you can imagine" a memory non-event. For the
//! durable, resumable variant of the same workflow, see `repro explore
//! --store`.
//!
//! ```bash
//! cargo run --release --example design_sweep
//! ```

use harvsim::{Explorer, GridSpec, ScenarioConfig, SweepParameter};

fn main() -> Result<(), harvsim::CoreError> {
    let mut base = ScenarioConfig::scenario1();
    base.duration_s = 0.8;
    base.frequency_step_time_s = 0.2;

    // Pre-charge last: the innermost axis is the warm-start chain direction,
    // and adjacent pre-charges make the best donors.
    let spec = GridSpec::new(base)
        .axis(SweepParameter::MultiplierStages, &[3.0, 4.0, 5.0, 6.0])
        .axis(SweepParameter::AccelerationAmplitude, &[0.5, 0.7])
        .axis(SweepParameter::InitialSupercapVoltage, &[2.3, 2.5, 2.7]);

    println!("== design exploration: stages x acceleration x pre-charge ==");
    println!("grid: {} points, executed by the work-stealing explorer\n", spec.offered());

    let report = Explorer::new(spec).run()?;
    println!(
        "completed {} / failed {} / skipped {} of {} offered  \
         (workers {}, {} engaged, {} steals, warm {} / cold {})",
        report.completed,
        report.failed,
        report.skipped,
        report.offered,
        report.workers,
        report.threads_used,
        report.steals,
        report.warm_hits,
        report.cold_starts
    );

    println!(
        "\n{:>6} {:<40} {:>13} {:>10} {:>8}",
        "index", "design point", "energy [J]", "dip [mV]", "steps"
    );
    for row in &report.rows {
        if let Some(metrics) = row.metrics() {
            let front = if report.pareto_front.contains(&row.index) { " *" } else { "" };
            println!(
                "{:>6} {:<40} {:>13.4e} {:>10.3} {:>8}{front}",
                row.index,
                row.label,
                metrics.energy_gain_j,
                metrics.dip_v * 1e3,
                metrics.steps
            );
        }
    }
    println!(
        "\n* = on the exact Pareto front (maximise energy gain, minimise store dip,\n\
         minimise engine steps) — {} of {} designs survive domination.",
        report.pareto_front.len(),
        report.completed
    );
    Ok(())
}
