//! Durable checkpoints and the multi-session scheduler, end to end:
//!
//! 1. run a session halfway, **save** its checkpoint to disk, and drop the
//!    live session entirely (a stand-in for a process kill or migration);
//! 2. **reload** the bytes, resume, and show the result is bit-identical to
//!    a run that was never interrupted;
//! 3. hand a small batch of scenarios to the [`harvsim::SessionService`] —
//!    a thread-per-core round-robin scheduler that preempts sessions at
//!    slice boundaries, checkpoints them on preemption, evicts the frames
//!    under a resident-memory budget, and bills each job's engine time from
//!    the carried counters;
//! 4. run the same batch **store-backed** and kill the service mid-run with
//!    an injected fault, then reopen the [`harvsim::SessionStore`] and show
//!    the restarted service recovering the interrupted jobs from their last
//!    sealed frames — finishing bit-identically, with billing conserved;
//! 5. open the **front door**: a [`harvsim::Server`] with a deliberately
//!    tiny per-class admission bound, an overload that sheds typed, the
//!    per-class queue-latency ledgers, and a graceful drain that parks
//!    every resident session durably in the store.
//!
//! ```bash
//! cargo run --release --example service_demo
//! ```

use std::sync::Arc;

use harvsim::{
    Command, FaultPlan, JobClass, Response, ScenarioConfig, Server, ServerOptions, ServiceOptions,
    Session, SessionService, SessionStore, Simulation, SubmitSpec, WaveformProbe, WireError,
};

fn scenario(label: &str, v0: f64) -> ScenarioConfig {
    let mut scenario = ScenarioConfig::scenario1();
    scenario.duration_s = 0.12;
    scenario.frequency_step_time_s = 0.03;
    scenario.controller.watchdog_period_s = 0.04;
    scenario.controller.energy_threshold_v = 2.0;
    scenario.controller.measurement_duration_s = 0.01;
    scenario.controller.tuning_rate_hz_per_s = 10.0;
    scenario.controller.tuning_update_interval_s = 0.005;
    scenario.initial_supercap_voltage = v0;
    scenario.label = Some(label.into());
    scenario
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. save to disk, "kill" the process stand-in ----------------------
    println!("== durable checkpoint: save, kill, reload, resume ==");
    let config = scenario("durable", 2.5);
    let mut session = Simulation::from_config(config.clone()).start()?;
    let interval = 1e-4;
    session.add_probe(WaveformProbe::new(interval));
    session.run_until(0.05)?;
    let frame = session.checkpoint()?;
    let path = std::env::temp_dir().join("harvsim_service_demo.ckpt");
    std::fs::write(&path, &frame)?;
    println!("  saved {} B at t = {:.3} s -> {}", frame.len(), session.time(), path.display());
    drop(session); // the live session is gone; only the file remains

    // -- 2. reload and resume ---------------------------------------------
    let bytes = std::fs::read(&path)?;
    let (mut resumed, ids) =
        Session::restore_with_probes(&bytes, vec![Box::new(WaveformProbe::new(interval))])?;
    println!("  reloaded at t = {:.3} s, resuming...", resumed.time());
    resumed.run_to_end()?;
    let resumed_report = resumed.report();

    // An uninterrupted control run of the same scenario: bit-identical.
    let mut control = Simulation::from_config(config).start()?;
    control.run_to_end()?;
    let control_report = control.report();
    assert_eq!(resumed_report.final_state, control_report.final_state);
    assert_eq!(
        resumed_report.engine_stats.state_space.steps,
        control_report.engine_stats.state_space.steps
    );
    let samples = resumed.probe::<WaveformProbe>(ids[0]).expect("typed").states().len();
    println!(
        "  resumed run: {} steps, {} probe samples, final state identical to an \
         uninterrupted run bit for bit",
        resumed_report.engine_stats.state_space.steps, samples
    );
    std::fs::remove_file(&path).ok();

    // -- 3. a batch through the scheduler ---------------------------------
    println!("\n== session service: round-robin with checkpoint eviction ==");
    let jobs: Vec<Simulation> = (0..6)
        .map(|k| Simulation::from_config(scenario(&format!("job-{k}"), 2.5 + k as f64 * 0.01)))
        .collect();
    let service = SessionService::new(ServiceOptions {
        workers: None,                         // thread per core
        slice_s: 0.04,                         // preempt every 40 ms of model time
        resident_budget_bytes: Some(2 * 1024), // ~2 probe-less frames: forces evictions
        ..Default::default()
    })?;
    let report = service.run(jobs);
    println!(
        "  {} workers, {} evictions, peak resident {} B",
        report.workers, report.evictions, report.peak_resident_bytes
    );
    for outcome in &report.outcomes {
        let job = outcome.result.as_ref().map_err(|err| err.to_string())?;
        println!(
            "  {:>6}: {} slices, {} evictions, billed {:>9.3} ms engine time, \
             store {:.4} V",
            outcome.label.as_deref().unwrap_or("?"),
            outcome.slices,
            outcome.evictions,
            outcome.billed_engine_time.as_secs_f64() * 1e3,
            job.final_state[job.final_state.len() - 1],
        );
    }
    println!(
        "  total billed {:.3} ms == sum of per-job bills ({})",
        report.total_billed.as_secs_f64() * 1e3,
        report.outcomes.iter().map(|o| o.billed_engine_time).sum::<std::time::Duration>()
            == report.total_billed
    );
    let uninterrupted: Vec<_> = report
        .outcomes
        .iter()
        .map(|o| o.result.as_ref().expect("batch ran clean").final_state.clone())
        .collect();

    // -- 4. kill the service mid-batch, recover from the store --------------
    println!("\n== crash recovery: kill mid-batch, reopen the store, finish ==");
    let store_dir = std::env::temp_dir().join("harvsim_service_demo_store");
    std::fs::remove_dir_all(&store_dir).ok(); // a fresh demo every run

    // A deterministic fault plan that kills the service at the 8th slice
    // boundary — the moral equivalent of `kill -9` mid-batch.
    let plan = Arc::new(FaultPlan::new(42).with_kills(8, 1));
    let store = {
        let mut store = SessionStore::open(&store_dir)?;
        store.set_fault_plan(Some(Arc::clone(&plan)));
        store
    };
    let jobs: Vec<Simulation> = (0..6)
        .map(|k| Simulation::from_config(scenario(&format!("job-{k}"), 2.5 + k as f64 * 0.01)))
        .collect();
    let service = SessionService::new(ServiceOptions {
        workers: Some(2),
        slice_s: 0.04,
        resident_budget_bytes: Some(0), // checkpoint to the store on every slice
        fault_plan: Some(Arc::clone(&plan)),
        ..Default::default()
    })?;
    let crashed = service.run_with_store(jobs, &store)?;
    let unresolved = crashed.outcomes.iter().filter(|o| o.result.is_err()).count();
    println!(
        "  first run: interrupted = {}, {} of {} jobs unresolved, frames on disk: {:?}",
        crashed.interrupted,
        unresolved,
        crashed.outcomes.len(),
        store.active_ids(),
    );
    drop(store);
    drop(crashed);

    // Reopen the store — the recovery scan re-admits the interrupted jobs —
    // and run the same batch again on a fresh service, faults disarmed.
    let store = SessionStore::open(&store_dir)?;
    println!(
        "  reopened store: {} recoverable frame(s), manifest rebuilt = {}",
        store.recovery().recovered.len(),
        store.recovery().manifest_rebuilt,
    );
    let jobs: Vec<Simulation> = (0..6)
        .map(|k| Simulation::from_config(scenario(&format!("job-{k}"), 2.5 + k as f64 * 0.01)))
        .collect();
    let service = SessionService::new(ServiceOptions {
        workers: Some(2),
        slice_s: 0.04,
        resident_budget_bytes: Some(0),
        ..Default::default()
    })?;
    let recovered = service.run_with_store(jobs, &store)?;
    for (outcome, expected) in recovered.outcomes.iter().zip(&uninterrupted) {
        let job = outcome.result.as_ref().map_err(|err| err.to_string())?;
        assert_eq!(&job.final_state, expected, "recovery must be bit-identical");
        assert_eq!(outcome.billed_engine_time, job.engine_time(), "billing conserved");
        println!(
            "  {:>6}: recovered = {:<5} billed {:>9.3} ms, final state identical to the \
             uninterrupted run",
            outcome.id,
            outcome.recovered,
            outcome.billed_engine_time.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  second run: {} job(s) resumed from sealed frames, {} restarted fresh — all \
         bit-identical, store left clean ({} active id(s))",
        recovered.recovered_jobs,
        recovered.outcomes.len() - recovered.recovered_jobs,
        store.active_ids().len(),
    );
    std::fs::remove_dir_all(&store_dir).ok();

    // -- 5. the front door: overload shedding, classes, graceful drain ------
    println!("\n== front door: admission control, deadline classes, drain ==");
    let door_dir = std::env::temp_dir().join("harvsim_service_demo_door");
    std::fs::remove_dir_all(&door_dir).ok();
    let server = Server::start(
        SessionStore::open(&door_dir)?,
        ServerOptions {
            workers: Some(2),
            slice_s: 0.04,
            class_capacity: 2, // deliberately tiny: the overload is the point
            ..Default::default()
        },
    )?;
    // Five offers against a 2-per-class bound: the third interactive one is
    // shed typed at the door — nothing about it is retained or billed.
    let classes = [
        JobClass::Interactive,
        JobClass::Interactive,
        JobClass::Interactive,
        JobClass::Batch,
        JobClass::BestEffort,
    ];
    for (k, class) in classes.iter().enumerate() {
        let mut spec = SubmitSpec::new(format!("door-{k}"));
        spec.class = *class;
        spec.deadline_s = Some(0.5 + k as f64 * 0.25);
        // Long enough (in wall-clock terms) that every admitted session is
        // still resident when the later offers arrive and the drain runs —
        // the drain parks them; nobody waits for them to finish.
        spec.duration_s = Some(30.0);
        spec.initial_voltage = Some(2.5 + k as f64 * 0.01);
        match server.execute(Command::Submit(spec)) {
            Response::Submitted { id, class, depth } => {
                println!("  admitted {id} ({class}, resident depth {depth})");
            }
            Response::Error(WireError::Overloaded { class, depth, capacity }) => {
                println!(
                    "  shed door-{k}: {class} already at {depth}/{capacity} resident — \
                     typed rejection, nothing leaked"
                );
            }
            other => println!("  unexpected submit answer: {other:?}"),
        }
    }
    let drained = match server.execute(Command::Drain) {
        Response::Drained { checkpointed, not_started, duration_ms } => {
            (checkpointed, not_started, duration_ms)
        }
        other => panic!("drain answered {other:?}"),
    };
    let stats = server.stats();
    assert_eq!(
        stats.admitted + stats.shed + stats.resubmitted,
        stats.offered,
        "the offer ledger must balance"
    );
    println!(
        "  books: offered {} = admitted {} + shed {} + resubmitted {}",
        stats.offered, stats.admitted, stats.shed, stats.resubmitted
    );
    for class in JobClass::ALL {
        println!(
            "  {class:>12}: {} resident, {:.3} ms total queue latency",
            stats.depths[class.index()],
            stats.queue_latency_ns[class.index()] as f64 * 1e-6,
        );
    }
    println!(
        "  drain parked {} session(s) durably ({} never started) in {} ms",
        drained.0, drained.1, drained.2
    );
    server.join();
    let store = SessionStore::open(&door_dir)?;
    println!(
        "  reopened store holds {} frame(s) — resubmit after a restart resumes them",
        store.active_ids().len()
    );
    std::fs::remove_dir_all(&door_dir).ok();
    Ok(())
}
