//! Scenario 2 of the paper (wide, 14 Hz tuning — the maximum range of the
//! design): reproduces the data behind Fig. 9.
//!
//! ```bash
//! cargo run --release --example wide_tuning
//! ```

use harvsim::core::measurement;
use harvsim::{EnvelopeProbe, PowerProbe, ScenarioConfig, Simulation};

fn main() -> Result<(), harvsim::CoreError> {
    let mut scenario = ScenarioConfig::scenario2();
    scenario.duration_s = 14.0;
    scenario.frequency_step_time_s = 2.0;
    // The wide retune costs more energy, so start with a little more margin.
    scenario.initial_supercap_voltage = 2.6;

    println!("== Scenario 2: 70 Hz -> 84 Hz (maximum tuning range) ==");
    // Stream the power figures and the store envelope off a live session.
    let mut streaming = Simulation::from_config(scenario.clone()).start()?;
    let vm = streaming.harvester().generator_voltage_net();
    let im = streaming.harvester().generator_current_net();
    let vc = streaming.harvester().storage_voltage_net();
    let power = streaming.add_probe(PowerProbe::new(
        vm,
        im,
        scenario.frequency_step_time_s,
        scenario.duration_s,
    ));
    let store = streaming.add_probe(EnvelopeProbe::terminal(vc));
    streaming.run_to_end()?;
    let power_report = streaming.probe::<PowerProbe>(power).expect("typed probe").report();
    let envelope = streaming.probe::<EnvelopeProbe>(store).expect("typed probe");
    println!(
        "store envelope over the retune: [{:.3}, {:.3}] V ({} B of probe memory)",
        envelope.min(),
        envelope.max(),
        streaming.report().peak_probe_bytes
    );

    let simulation = scenario.run()?;

    println!(
        "resonance after the run: {:.2} Hz (target {:.2} Hz)",
        simulation.harvester.resonant_frequency_hz(),
        scenario.scenario.target_frequency_hz()
    );
    println!("RMS generated power before the shift: {:8.1} uW", power_report.rms_before_uw);
    println!("RMS generated power after retuning:   {:8.1} uW", power_report.rms_after_uw);
    println!("minimum power while detuned by 14 Hz: {:8.1} uW", power_report.dip_uw);

    println!("\nFig. 9 — supercapacitor voltage, simulation vs experimental surrogate:");
    let surrogate = scenario.run_experimental_surrogate()?;
    let comparison = measurement::compare_supercap_voltage(&simulation, &surrogate, 400)?;
    println!(
        "  max |simulated - surrogate| = {:.3} V, rms = {:.3} V",
        comparison.max_deviation, comparison.rms_deviation
    );
    let sim_trace = measurement::supercap_voltage_waveform(&simulation);
    let ref_trace = measurement::supercap_voltage_waveform(&surrogate);
    println!("\n  t [s]    simulated [V]   surrogate 'measured' [V]");
    let stride = (sim_trace.len() / 15).max(1);
    for (sample, reference) in sim_trace.iter().zip(ref_trace.iter()).step_by(stride) {
        println!("  {:6.2}   {:10.4}      {:10.4}", sample.0, sample.1, reference.1);
    }

    println!("\ntuning timeline (controller events):");
    for event in &simulation.result.control_events {
        println!(
            "  t = {:6.2} s  load = {:9}  resonance = {:6.2} Hz",
            event.time_s,
            event.load_mode.name(),
            event.resonant_frequency_hz
        );
    }
    Ok(())
}
