//! Head-to-head CPU-time comparison between the proposed linearised
//! state-space technique and the Newton–Raphson baseline on the paper's two
//! scenarios — the data behind Tables I and II.
//!
//! ```bash
//! cargo run --release --example speed_comparison
//! ```
//!
//! Pass `--long` for spans closer to the paper's (several times slower to run).
//!
//! Both engines run as streaming sessions under the hood (with one dense
//! capture probe each, so the accuracy comparison has waveforms to scan), and
//! the Newton–Raphson baseline evaluates the *exact* Shockley device
//! equations — the PWL lookup table is the proposed technique's contribution
//! and is not shared with the tool the technique is measured against.

use harvsim::{ScenarioConfig, SpeedComparison};

fn main() -> Result<(), harvsim::CoreError> {
    let long = std::env::args().any(|arg| arg == "--long");
    let (duration_1, duration_2) = if long { (20.0, 30.0) } else { (4.0, 6.0) };

    let comparison = SpeedComparison::with_defaults();
    println!("== Table II: CPU times, existing vs proposed technique ==");
    println!(
        "{:<12} {:>16} {:>16} {:>10} {:>14}",
        "scenario", "baseline [s]", "proposed [s]", "speed-up", "max dev [V]"
    );

    for (label, mut scenario, duration) in [
        ("scenario1", ScenarioConfig::scenario1(), duration_1),
        ("scenario2", ScenarioConfig::scenario2(), duration_2),
    ] {
        scenario.duration_s = duration;
        scenario.frequency_step_time_s = 1.0;
        let report = comparison.run(&scenario)?;
        println!(
            "{:<12} {:>16.3} {:>16.3} {:>9.1}x {:>14.4}",
            label,
            report.baseline_cpu.as_secs_f64(),
            report.proposed_cpu.as_secs_f64(),
            report.speedup(),
            report.accuracy.max_deviation
        );
        let baseline_stats = report.baseline.result.engine_stats.baseline;
        let proposed_stats = report.proposed.result.engine_stats.state_space;
        println!(
            "             baseline: {} steps, {} Newton iterations, {} LU factorisations",
            baseline_stats.steps, baseline_stats.newton_iterations, baseline_stats.factorisations
        );
        println!(
            "             proposed: {} steps, {} linearisations, {} LU factorisations (no Newton)",
            proposed_stats.steps, proposed_stats.linearisations, proposed_stats.factorisations
        );
    }

    println!(
        "\n(The paper reports 2185 s vs 20.3 s for Scenario 1 and 7 h vs 228 s for Scenario 2 on a\n\
         2 GHz Pentium 4 running full commercial simulators; the factors here are smaller because\n\
         the baseline shares the reproduction's lean compiled Rust model — though since the\n\
         session redesign it at least evaluates the exact Shockley device equations instead of\n\
         borrowing the proposed technique's lookup tables.)"
    );
    Ok(())
}
