"""CI gate over the machine-readable Table II record (BENCH_table2.json).

Three checks, in increasing strictness about what they tolerate:

* cross-engine deviation <= 2e-4 V — deterministic (same arithmetic every
  run on a given target), so any failure is a real accuracy regression;
* |binding_pole_re| <= 3.5e4 1/s — deterministic; a failure means the stiff
  interface pole (~ -4.1e4 1/s) is back in the explicit lane, i.e. the
  partitioned IMEX march stopped doing its job (DESIGN.md S7);
* min speed-up >= 6.0 — a wall-clock ratio, noisy on shared runners; the
  workflow retries the whole reproduction a couple of times before treating
  a miss as a regression. The recorded numbers sit near 6.3-6.9x/8-9.4x.
"""

import json
import sys

with open("BENCH_table2.json") as f:
    record = json.load(f)

for scenario in record["scenarios"]:
    print(
        f"{scenario['name']}: {scenario['speedup']}x "
        f"(max deviation {scenario['max_deviation_v']} V, "
        f"steps {scenario['steps']}, "
        f"stiff_exact {scenario['stiff_exact_steps']}, "
        f"threads {scenario['threads_used']}, "
        f"binding pole {scenario['binding_pole_re']}"
        f"{scenario['binding_pole_im']:+}i, "
        f"steps_by_order {scenario['steps_by_order']})"
    )
    if scenario["max_deviation_v"] > 2e-4:
        sys.exit(
            f"{scenario['name']}: cross-engine deviation "
            f"{scenario['max_deviation_v']} V exceeds 2e-4 V"
        )
    if abs(scenario["binding_pole_re"]) > 3.5e4:
        sys.exit(
            f"{scenario['name']}: step limit priced by "
            f"{scenario['binding_pole_re']} 1/s — the stiff interface pole "
            f"is back in the explicit lane"
        )
if record["min_speedup"] < 6.0:
    sys.exit(
        f"Table II speed-up below the gate: "
        f"min speed-up {record['min_speedup']} < 6.0"
    )
print(f"gate passed: min speed-up {record['min_speedup']}x")
