"""CI gate over the machine-readable Table II record (BENCH_table2.json).

Checks, in increasing tolerance for noise:

* cross-engine deviation <= 2e-4 V — deterministic (same arithmetic every
  run on a given target), so any failure is a real accuracy regression;
* |binding_pole_re| <= 3.5e4 1/s — deterministic; a failure means the stiff
  interface pole (~ -4.1e4 1/s) is back in the explicit lane, i.e. the
  partitioned IMEX march stopped doing its job (DESIGN.md S7);
* every row records `peak_probe_bytes` (the session facade's probe-memory
  high-water mark), and streaming `--sweep` rows keep it under a fixed bound
  independent of the simulated span — a sweep point must never materialise a
  dense trajectory (DESIGN.md S8);
* min speed-up >= 4.2 — a wall-clock ratio, noisy on shared runners; the
  workflow retries the whole reproduction a couple of times before treating
  a miss as a regression.

Gate history: the floor was 6.0 for PR 4 (measured 6.3-6.9x). The session PR
recalibrated it to 4.2 (measured ~4.7x/7.3x) because the *baseline* stand-in
became ~40 % faster for honest reasons: the inconsistent tangent-interpolated
companion tables (which cost Newton ~4.3 iterations/step) were replaced by
consistent segment chords, and the baseline now evaluates the exact Shockley
equations (~3.3 iterations/step) instead of borrowing the paper's own lookup
trick. The proposed engine's absolute per-step cost is within a few percent
of PR 4; the ratio moved because the denominator improved. See DESIGN.md S8.
"""

import json
import sys

with open("BENCH_table2.json") as f:
    record = json.load(f)

STREAMING_PEAK_BYTES_BOUND = 65536  # streaming sweep rows must stay O(1)

for scenario in record["scenarios"]:
    if "peak_probe_bytes" not in scenario:
        sys.exit(f"{scenario['name']}: record is missing peak_probe_bytes")
    print(
        f"{scenario['name']}: {scenario['speedup']}x "
        f"(max deviation {scenario['max_deviation_v']} V, "
        f"steps {scenario['steps']}, "
        f"stiff_exact {scenario['stiff_exact_steps']}, "
        f"pwl_skips {scenario['pwl_stamps_skipped']}, "
        f"peak_probe_bytes {scenario['peak_probe_bytes']}, "
        f"threads {scenario['threads_used']}, "
        f"binding pole {scenario['binding_pole_re']}"
        f"{scenario['binding_pole_im']:+}i, "
        f"steps_by_order {scenario['steps_by_order']})"
    )
    if scenario["max_deviation_v"] > 2e-4:
        sys.exit(
            f"{scenario['name']}: cross-engine deviation "
            f"{scenario['max_deviation_v']} V exceeds 2e-4 V"
        )
    if abs(scenario["binding_pole_re"]) > 3.5e4:
        sys.exit(
            f"{scenario['name']}: step limit priced by "
            f"{scenario['binding_pole_re']} 1/s — the stiff interface pole "
            f"is back in the explicit lane"
        )
    if (
        scenario["name"].startswith("sweep")
        and scenario["peak_probe_bytes"] > STREAMING_PEAK_BYTES_BOUND
    ):
        sys.exit(
            f"{scenario['name']}: streaming sweep point retained "
            f"{scenario['peak_probe_bytes']} B of probe memory "
            f"(> {STREAMING_PEAK_BYTES_BOUND} B) — a dense trajectory "
            f"leaked into the streaming path"
        )
if record["min_speedup"] < 4.2:
    sys.exit(
        f"Table II speed-up below the gate: "
        f"min speed-up {record['min_speedup']} < 4.2"
    )
print(f"gate passed: min speed-up {record['min_speedup']}x")
