"""CI gate over the machine-readable exploration record (BENCH_explore.json).

Structural checks — all deterministic, no retries needed:

* schema: every required header/counter key is present, every point row
  carries its index/label/status (+ metrics when completed, error when
  failed), and every summary names its objective;
* conservation: offered == completed + failed + skipped, the row count is
  completed + failed, and warm_hits + cold_starts equals the points
  executed this run (rows minus resumed);
* the Pareto front is non-empty and every front index is a *completed* row;
* with --require-warm (the first full run of the smoke job): the scheduler
  actually fanned out (threads_used > 1) and warm starts actually happened
  (warm_hits > 0);
* with --require-resumed (the post-kill --resume pass): at least one row
  was recovered from the result store instead of recomputed.

Usage: python3 ci_check_explore.py [--require-warm] [--require-resumed]
"""

import json
import sys

require_warm = "--require-warm" in sys.argv[1:]
require_resumed = "--require-resumed" in sys.argv[1:]
for flag in sys.argv[1:]:
    if flag not in ("--require-warm", "--require-resumed"):
        sys.exit(f"unknown flag {flag}")

with open("BENCH_explore.json") as f:
    record = json.load(f)

HEADER_KEYS = [
    "experiment",
    "base",
    "axes",
    "subsample",
    "seed",
    "offered",
    "completed",
    "failed",
    "skipped",
    "workers",
    "threads_used",
    "steals",
    "warm_hits",
    "cold_starts",
    "resumed",
    "dropped_regions",
    "points",
    "pareto_front",
    "summaries",
]
for key in HEADER_KEYS:
    if key not in record:
        sys.exit(f"record is missing `{key}`")
if record["experiment"] != "explore":
    sys.exit(f"unexpected experiment `{record['experiment']}`")

offered = record["offered"]
completed = record["completed"]
failed = record["failed"]
skipped = record["skipped"]
if offered != completed + failed + skipped:
    sys.exit(
        f"accounting does not balance: offered {offered} != "
        f"completed {completed} + failed {failed} + skipped {skipped}"
    )
if len(record["points"]) != completed + failed:
    sys.exit(
        f"row count {len(record['points'])} != completed {completed} + failed {failed}"
    )

completed_indices = set()
seen_indices = set()
for point in record["points"]:
    for key in ("index", "label", "status", "warm", "resumed"):
        if key not in point:
            sys.exit(f"point row is missing `{key}`: {point}")
    if point["index"] in seen_indices:
        sys.exit(f"duplicate point index {point['index']}")
    seen_indices.add(point["index"])
    if point["status"] == "completed":
        for key in ("energy_gain_j", "dip_v", "wall_s", "steps", "v_first", "v_last"):
            if key not in point:
                sys.exit(f"completed row {point['index']} is missing `{key}`")
        completed_indices.add(point["index"])
    elif point["status"] == "failed":
        if "error" not in point:
            sys.exit(f"failed row {point['index']} is missing `error`")
    else:
        sys.exit(f"row {point['index']}: unknown status `{point['status']}`")
if len(completed_indices) != completed:
    sys.exit(
        f"completed rows {len(completed_indices)} != completed counter {completed}"
    )

executed = len(record["points"]) - record["resumed"]
if record["warm_hits"] + record["cold_starts"] != executed:
    sys.exit(
        f"warm_hits {record['warm_hits']} + cold_starts {record['cold_starts']} "
        f"!= executed rows {executed}"
    )

front = record["pareto_front"]
if not front:
    sys.exit("the Pareto front is empty")
for index in front:
    if index not in completed_indices:
        sys.exit(f"Pareto front index {index} is not a completed row")

for summary in record["summaries"]:
    for key in ("objective", "min", "max", "mean"):
        if key not in summary:
            sys.exit(f"summary is missing `{key}`: {summary}")

if require_warm:
    if record["threads_used"] <= 1:
        sys.exit(f"threads_used {record['threads_used']} <= 1 — no fan-out")
    if record["warm_hits"] <= 0:
        sys.exit("warm_hits == 0 — warm starts never happened")
if require_resumed and record["resumed"] <= 0:
    sys.exit("resumed == 0 — the --resume pass recomputed everything")

print(
    f"gate passed: {completed}/{offered} completed ({failed} failed, "
    f"{skipped} skipped), threads_used {record['threads_used']}, "
    f"steals {record['steals']}, warm {record['warm_hits']} / "
    f"cold {record['cold_starts']}, resumed {record['resumed']}, "
    f"front {len(front)} point(s)"
)
