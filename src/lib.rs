//! # harvsim
//!
//! A reproduction of *"Accelerated simulation of tunable vibration energy
//! harvesting systems using a linearised state-space technique"*
//! (Wang, Kazmierski, Al-Hashimi, Weddell, Merrett, Ayala Garcia — DATE 2011).
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra (LU, eigenvalues, diagonal dominance).
//! * [`ode`] — explicit (Adams–Bashforth) and implicit (Newton–Raphson)
//!   integrators, stability and step control.
//! * [`digital`] — the event-driven digital kernel used for the
//!   microcontroller process.
//! * [`blocks`] — the harvester component-block models (microgenerator,
//!   Dickson multiplier, supercapacitor, controller, excitation).
//! * [`core`] — the linearised state-space engine, the complete harvester
//!   model, the mixed-signal co-simulation, the evaluation scenarios and the
//!   Newton–Raphson baseline.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use harvsim::ScenarioConfig;
//!
//! # fn main() -> Result<(), harvsim::CoreError> {
//! let mut scenario = ScenarioConfig::scenario1();
//! scenario.duration_s = 0.2;            // keep the doc test fast
//! scenario.frequency_step_time_s = 0.05;
//! let outcome = scenario.run()?;
//! println!("recorded {} samples", outcome.states().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use harvsim_blocks as blocks;
pub use harvsim_core as core;
pub use harvsim_digital as digital;
pub use harvsim_linalg as linalg;
pub use harvsim_ode as ode;

pub use harvsim_blocks::{
    HarvesterParameters, LoadMode, Scenario, StateSpaceBlock, VibrationExcitation,
};
pub use harvsim_core::{
    BaselineOptions, ComparisonReport, CoreError, MixedSignalSimulation, NewtonRaphsonBaseline,
    ScenarioConfig, ScenarioResult, SimulationEngine, SolverOptions, SpeedComparison,
    StateSpaceSolver, TunableHarvester,
};
