//! # harvsim
//!
//! A reproduction of *"Accelerated simulation of tunable vibration energy
//! harvesting systems using a linearised state-space technique"*
//! (Wang, Kazmierski, Al-Hashimi, Weddell, Merrett, Ayala Garcia — DATE 2011).
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra (LU, eigenvalues, diagonal dominance).
//! * [`ode`] — explicit (Adams–Bashforth) and implicit (Newton–Raphson)
//!   integrators, stability and step control.
//! * [`digital`] — the event-driven digital kernel used for the
//!   microcontroller process.
//! * [`blocks`] — the harvester component-block models (microgenerator,
//!   Dickson multiplier, supercapacitor, controller, excitation).
//! * [`core`] — the linearised state-space engine, the complete harvester
//!   model, the mixed-signal co-simulation, the evaluation scenarios and the
//!   Newton–Raphson baseline.
//!
//! The most common entry points are re-exported at the top level. The
//! primary way to run a simulation is the streaming [`Simulation`] builder:
//! it produces an observable, resumable [`Session`] whose typed [`Probe`]s
//! watch the run as it happens — so a long sweep point needs O(1) memory
//! instead of retaining dense waveforms.
//!
//! ```
//! use harvsim::{EnvelopeProbe, Simulation};
//!
//! # fn main() -> Result<(), harvsim::CoreError> {
//! // Scenario 1 (70 → 71 Hz retune), trimmed so the doc test stays fast.
//! let mut session = Simulation::scenario1()
//!     .duration(0.2)
//!     .frequency_step_at(0.05)
//!     .start()?;
//! // Watch the supercapacitor terminal with an O(1) streaming probe.
//! let vc = session.harvester().storage_voltage_net();
//! let store = session.add_probe(EnvelopeProbe::terminal(vc));
//! // Observe mid-run, pause at any boundary, resume — bit-identically.
//! session.run_until(0.1)?;
//! session.run_to_end()?;
//! let report = session.report();
//! let envelope = session.probe::<EnvelopeProbe>(store).expect("typed retrieval");
//! println!(
//!     "{} steps, store ended at {:.3} V, {} B of probe memory",
//!     report.engine_stats.state_space.steps,
//!     envelope.last(),
//!     report.peak_probe_bytes,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The pre-session API ([`ScenarioConfig::run`] and friends) keeps working as
//! a thin shim over sessions, returning dense trajectories bit-identical to
//! earlier releases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use harvsim_blocks as blocks;
pub use harvsim_core as core;
pub use harvsim_digital as digital;
pub use harvsim_linalg as linalg;
pub use harvsim_ode as ode;

pub use harvsim_blocks::{
    HarvesterParameters, LoadMode, Scenario, StateSpaceBlock, VibrationExcitation,
};
pub use harvsim_core::{
    fnv1a64, BaselineOptions, CheckpointError, Client, Command, ComparisonReport, CoreError,
    DigitalEvent, DrainReport, EnvelopeProbe, ExploreReport, Explorer, Fault, FaultKind, FaultPlan,
    FaultSite, FrameReader, FrameWriter, GridSpec, JobClass, JobOutcome, JobRequest,
    MixedSignalSimulation, NewtonRaphsonBaseline, ObjectiveSummary, PointMetrics, PointOutcome,
    PointRecord, PowerProbe, Probe, ProtocolError, RecoveryReport, Response, RetryPolicy,
    ScenarioConfig, ScenarioResult, Server, ServerOptions, ServerStats, ServiceError,
    ServiceOptions, ServiceReport, Session, SessionReport, SessionService, SessionStatus,
    SessionStore, Simulation, SimulationEngine, SolverOptions, SpeedComparison, StateSpaceSolver,
    StatusInfo, StepHistogramProbe, StoreError, StoreOptions, SubmitSpec, SweepGrid,
    SweepParameter, TunableHarvester, WaveformProbe, WireError, WireState, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
